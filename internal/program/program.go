// Package program is the compiled execution core: it lowers a
// variable-set automaton into a flat, ε-free instruction table that
// the evaluation engines execute instead of walking va.Transition
// slices. The lowering reuses va.Normalize's ε-elimination and then
//
//   - renumbers states densely and represents state sets (frontiers,
//     co-reachability) as Bits bitsets,
//   - compresses the document alphabet into rune equivalence classes
//     computed from the automaton's runeclass predicates, so a letter
//     step classifies the rune once and then ORs dense per-state ×
//     per-class dispatch bitsets, and
//   - bit-packs variable open/close operations into uint64 masks
//     (open x = bit v, close x = bit 32+v), laid out in CSR edge
//     arrays, so boundary obligation sets become popcounts and mask
//     tests.
//
// The program is immutable after compilation, safe for concurrent
// use, and carries no per-document state: it is the artifact a
// long-lived service can cache, share between the Eval / ModelCheck /
// enumeration paths (Theorems 5.1 and 5.7 run on the same tables),
// and eventually persist in a spanner registry.
package program

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"spanners/internal/runeclass"
	"spanners/internal/span"
	"spanners/internal/va"
)

// MaxVars bounds the number of distinct variables a program can
// bit-pack (open and close each take one bit of a uint64 mask).
// Automata beyond the bound fall back to the interpreted engines.
const MaxVars = 32

// maxDeltaWords bounds the dense dispatch tables (delta + rdelta, in
// uint64 words) so a pathological automaton cannot allocate
// unboundedly; beyond it compilation fails and callers fall back.
const maxDeltaWords = 1 << 22 // 32 MiB of uint64s

// OpEdge is one variable-operation edge of the compiled program.
type OpEdge struct {
	To   int32  // destination state (source state for reverse edges)
	Mask uint64 // OpenBit(Var) or CloseBit(Var)
	Var  uint8  // dense variable id
	Open bool   // open (x⊢) vs close (⊣x)
}

// OpenBit returns the mask bit of the open operation of variable v.
func OpenBit(v int) uint64 { return 1 << uint(v) }

// CloseBit returns the mask bit of the close operation of variable v.
func CloseBit(v int) uint64 { return 1 << (32 + uint(v)) }

// Stats describes a compiled program, for metrics and benchmarks.
type Stats struct {
	States      int   `json:"states"`
	Classes     int   `json:"classes"`
	Vars        int   `json:"vars"`
	OpEdges     int   `json:"op_edges"`
	LetterEdges int   `json:"letter_edges"`
	DeltaWords  int   `json:"delta_words"`
	FusedRuns   int   `json:"fused_runs,omitempty"`
	CompileNS   int64 `json:"compile_ns"`
}

// Program is a compiled, flat, ε-free form of a VA. All exported
// fields are read-only after Compile.
type Program struct {
	NumStates  int
	Start      int
	NumClasses int

	// Vars assigns dense ids to every variable appearing on an op
	// edge, sorted by name. OpenedMask marks the ids that have at
	// least one open edge (the automaton's var set in the paper's
	// sense; close-only variables can never fire).
	Vars       []span.Var
	OpenedMask uint64

	// Final marks accepting states (ε-slide into a final state of the
	// source automaton is folded in by va.Normalize).
	Final Bits

	// Rune classification: disjoint sorted ranges [lo[i], hi[i]] with
	// class id cls[i]; runes outside every range match no letter edge.
	lo  []rune
	hi  []rune
	cls []uint16

	// delta[q*NumClasses+c] is the bitset of successors of q on class
	// c; rdelta[q*NumClasses+c] the bitset of predecessors.
	delta  []Bits
	rdelta []Bits

	// Op edges in CSR layout: edges leaving q are
	// OpEdges[OpHead[q]:OpHead[q+1]]; ROpEdges mirrors them entering q
	// (their To field holds the source state).
	OpHead   []int32
	OpEdges  []OpEdge
	ROpHead  []int32
	ROpEdges []OpEdge

	// HasOps marks states with at least one outgoing op edge, RHasOps
	// with at least one incoming: boundary closures exit immediately
	// when the frontier avoids them, the common case away from the
	// anchored region of a pattern.
	HasOps  Bits
	RHasOps Bits

	// Derived accelerators (fuse.go): O(1) ASCII classification and
	// the superinstruction tables of the peephole pass.
	asciiClass [128]int16
	runOf      []int32
	runs       []fusedRun

	// Lazily created shared state: the per-program lazy-DFA cache and
	// the artifact fingerprint binding persisted caches to the program.
	dfaOnce sync.Once
	dfa     *DFA
	fpOnce  sync.Once
	fp      uint64

	// Required-literal prefilter (prefilter.go) and the bounded family
	// of constrained-closure DFA caches (dfa.go), both lazy.
	prefOnce    sync.Once
	pref        *Prefilter
	constrMu    sync.Mutex
	constrained map[uint64]*DFA

	stats Stats
}

// Fingerprint returns the FNV-64a hash of the program's encoded
// artifact. It is the identity a persisted DFA-cache sidecar is bound
// to: because Encode is deterministic, equal programs — compiled or
// decoded — share a fingerprint.
func (p *Program) Fingerprint() uint64 {
	p.fpOnce.Do(func() {
		h := fnv.New64a()
		h.Write(p.Encode())
		p.fp = h.Sum64()
	})
	return p.fp
}

// Stats returns the compile-time statistics of the program.
func (p *Program) Stats() Stats { return p.stats }

// VarID returns the dense id of v and whether the program knows it.
func (p *Program) VarID(v span.Var) (int, bool) {
	i := sort.Search(len(p.Vars), func(i int) bool { return p.Vars[i] >= v })
	if i < len(p.Vars) && p.Vars[i] == v {
		return i, true
	}
	return 0, false
}

// ClassOf classifies a rune into its equivalence class, or -1 when no
// letter edge of the program can read it. ASCII runes resolve through
// a direct-indexed table; the rest binary-search the range list.
func (p *Program) ClassOf(r rune) int {
	if r >= 0 && r < 128 {
		return int(p.asciiClass[r])
	}
	lo, hi := 0, len(p.lo)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case r < p.lo[mid]:
			hi = mid
		case r > p.hi[mid]:
			lo = mid + 1
		default:
			return int(p.cls[mid])
		}
	}
	return -1
}

// Succ returns the successor bitset of state q on class c. The result
// is shared and must not be modified.
func (p *Program) Succ(q, c int) Bits { return p.delta[q*p.NumClasses+c] }

// Pred returns the predecessor bitset of state q on class c.
func (p *Program) Pred(q, c int) Bits { return p.rdelta[q*p.NumClasses+c] }

// OpsFrom returns the op edges leaving q.
func (p *Program) OpsFrom(q int) []OpEdge { return p.OpEdges[p.OpHead[q]:p.OpHead[q+1]] }

// OpsInto returns the op edges entering q (To holds the source).
func (p *Program) OpsInto(q int) []OpEdge { return p.ROpEdges[p.ROpHead[q]:p.ROpHead[q+1]] }

// Compile lowers a VA into a program. It fails (and the caller should
// fall back to the interpreted engines) when the automaton uses more
// than MaxVars variables or the dense dispatch tables would exceed the
// size budget; semantics are never silently approximated.
func Compile(a *va.VA) (*Program, error) {
	start := time.Now()
	n := a.Normalize()

	// Dense variable ids over every op-edge variable.
	varSet := map[span.Var]bool{}
	for _, t := range n.Trans {
		if t.Kind == va.Open || t.Kind == va.Close {
			varSet[t.Var] = true
		}
	}
	if len(varSet) > MaxVars {
		return nil, fmt.Errorf("program: %d variables exceed the %d-variable mask budget", len(varSet), MaxVars)
	}
	vars := make([]span.Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	varID := make(map[span.Var]int, len(vars))
	for i, v := range vars {
		varID[v] = i
	}

	// Rune equivalence classes: the atoms of the boolean algebra
	// generated by the letter predicates. Within one atom every rune
	// enables exactly the same letter edges.
	letterClasses := n.LetterClasses()
	atoms := runeclass.Atoms(letterClasses)
	numClasses := len(atoms)

	words := (n.NumStates + 63) / 64
	if total := 2 * n.NumStates * numClasses * words; total > maxDeltaWords {
		return nil, fmt.Errorf("program: dispatch table of %d words exceeds budget (%d states × %d classes)",
			total, n.NumStates, numClasses)
	}

	p := &Program{
		NumStates:  n.NumStates,
		Start:      n.Start,
		NumClasses: numClasses,
		Vars:       vars,
		Final:      NewBits(n.NumStates),
	}
	for _, f := range n.Finals {
		p.Final.Set(f)
	}

	// Classification table: atoms are disjoint, so their ranges merge
	// into one sorted interval list tagged with the atom id.
	type interval struct {
		lo, hi rune
		cls    uint16
	}
	var ivs []interval
	for ci, atom := range atoms {
		for _, r := range atom.Ranges() {
			ivs = append(ivs, interval{r.Lo, r.Hi, uint16(ci)})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	p.lo = make([]rune, len(ivs))
	p.hi = make([]rune, len(ivs))
	p.cls = make([]uint16, len(ivs))
	for i, iv := range ivs {
		p.lo[i], p.hi[i], p.cls[i] = iv.lo, iv.hi, iv.cls
	}

	// Dense letter dispatch. An atom enables a transition class iff
	// any (equivalently every) of its runes does.
	backing := make([]uint64, 2*n.NumStates*numClasses*words)
	p.delta = make([]Bits, n.NumStates*numClasses)
	p.rdelta = make([]Bits, n.NumStates*numClasses)
	for i := range p.delta {
		p.delta[i] = Bits(backing[i*words : (i+1)*words])
	}
	off := n.NumStates * numClasses * words
	for i := range p.rdelta {
		p.rdelta[i] = Bits(backing[off+i*words : off+(i+1)*words])
	}
	atomSample := make([]rune, numClasses)
	for ci, atom := range atoms {
		r, ok := atom.Sample()
		if !ok {
			return nil, fmt.Errorf("program: empty alphabet atom")
		}
		atomSample[ci] = r
	}
	letterEdges := 0
	for _, t := range n.Trans {
		if t.Kind != va.Letter {
			continue
		}
		letterEdges++
		for ci := 0; ci < numClasses; ci++ {
			if t.Class.Contains(atomSample[ci]) {
				p.delta[t.From*numClasses+ci].Set(t.To)
				p.rdelta[t.To*numClasses+ci].Set(t.From)
			}
		}
	}

	// Op edges, CSR in both directions.
	counts := make([]int32, n.NumStates+1)
	rcounts := make([]int32, n.NumStates+1)
	for _, t := range n.Trans {
		if t.Kind == va.Open || t.Kind == va.Close {
			counts[t.From+1]++
			rcounts[t.To+1]++
		}
	}
	for q := 0; q < n.NumStates; q++ {
		counts[q+1] += counts[q]
		rcounts[q+1] += rcounts[q]
	}
	p.OpHead = counts
	p.ROpHead = rcounts
	p.OpEdges = make([]OpEdge, counts[n.NumStates])
	p.ROpEdges = make([]OpEdge, rcounts[n.NumStates])
	fill := make([]int32, n.NumStates)
	rfill := make([]int32, n.NumStates)
	for _, t := range n.Trans {
		if t.Kind != va.Open && t.Kind != va.Close {
			continue
		}
		vi := varID[t.Var]
		open := t.Kind == va.Open
		mask := CloseBit(vi)
		if open {
			mask = OpenBit(vi)
			p.OpenedMask |= OpenBit(vi)
		}
		e := OpEdge{To: int32(t.To), Mask: mask, Var: uint8(vi), Open: open}
		p.OpEdges[p.OpHead[t.From]+fill[t.From]] = e
		fill[t.From]++
		re := e
		re.To = int32(t.From)
		p.ROpEdges[p.ROpHead[t.To]+rfill[t.To]] = re
		rfill[t.To]++
	}
	p.HasOps = NewBits(n.NumStates)
	p.RHasOps = NewBits(n.NumStates)
	for q := 0; q < n.NumStates; q++ {
		if p.OpHead[q+1] > p.OpHead[q] {
			p.HasOps.Set(q)
		}
		if p.ROpHead[q+1] > p.ROpHead[q] {
			p.RHasOps.Set(q)
		}
	}

	p.stats = Stats{
		States:      p.NumStates,
		Classes:     numClasses,
		Vars:        len(vars),
		OpEdges:     len(p.OpEdges),
		LetterEdges: letterEdges,
		DeltaWords:  len(backing),
	}
	p.finishTables()
	p.stats.CompileNS = time.Since(start).Nanoseconds()
	return p, nil
}

// OpClosure saturates the frontier in place under every op edge whose
// mask avoids blocked: the compiled form of "treat operations of
// unconstrained variables as ε" at a boundary with no obligations.
// Only states with outgoing op edges enter the worklist, and the call
// returns without allocating when the frontier has none.
func (p *Program) OpClosure(cur Bits, blocked uint64) {
	if !cur.Intersects(p.HasOps) {
		return
	}
	stack := make([]int32, 0, 16)
	cur.ForEach(func(q int) {
		if p.HasOps.Has(q) {
			stack = append(stack, int32(q))
		}
	})
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.OpsFrom(int(q)) {
			if e.Mask&blocked != 0 || cur.Has(int(e.To)) {
				continue
			}
			cur.Set(int(e.To))
			if p.HasOps.Has(int(e.To)) {
				stack = append(stack, e.To)
			}
		}
	}
}

// ROpClosure saturates the frontier in place under reversed op edges,
// unconditionally (the permissive closure used by co-reachability).
func (p *Program) ROpClosure(cur Bits) {
	if !cur.Intersects(p.RHasOps) {
		return
	}
	stack := make([]int32, 0, 16)
	cur.ForEach(func(q int) {
		if p.RHasOps.Has(q) {
			stack = append(stack, int32(q))
		}
	})
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range p.OpsInto(int(q)) {
			if cur.Has(int(e.To)) {
				continue
			}
			cur.Set(int(e.To))
			if p.RHasOps.Has(int(e.To)) {
				stack = append(stack, e.To)
			}
		}
	}
}

// LetterStep computes next = ∪_{q ∈ cur} Succ(q, c), reporting whether
// any successor exists. next must be zeroed by the caller.
func (p *Program) LetterStep(cur Bits, c int, next Bits) bool {
	any := false
	cur.ForEach(func(q int) {
		if p.Succ(q, c).Any() {
			next.Or(p.Succ(q, c))
			any = true
		}
	})
	return any
}

// LetterStepBack computes prev = ∪_{q ∈ cur} Pred(q, c). prev must be
// zeroed by the caller.
func (p *Program) LetterStepBack(cur Bits, c int, prev Bits) {
	cur.ForEach(func(q int) {
		prev.Or(p.Pred(q, c))
	})
}
