package program

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestPrefilterLiteralDerivation: the analysis must derive a literal
// exactly when every accepting run is forced through a fused
// singleton-class run — and must stay nil whenever an accepting run
// can avoid the candidate (optional branches, final heads, non-ASCII
// or multi-rune classes, sub-minimum lengths).
func TestPrefilterLiteralDerivation(t *testing.T) {
	for _, tc := range []struct {
		expr string
		want bool // a prefilter must (not) exist
	}{
		{`.*ERROR x{[^\n]*}\n.*`, true},
		{`.*Seller: x{[a-z]*}, ID.*`, true},
		{`x{a*}`, false},                     // no literal run at all
		{`.*(ERROR |)x{a*}.*`, false},        // literal on an optional branch
		{`(ERROR x{a*}|)`, false},            // whole alternative optional
		{`.*E\d+x{a*}.*`, false},             // run shorter than the minimum
		{`.*naïve x{a*}.*`, true},            // non-ASCII splits the run; ASCII tail still required
		{`.*(FOO x{a*}|BAR x{b*}).*`, false}, // either branch avoids the other's literal
	} {
		p := compileExpr(t, tc.expr)
		pf := p.Prefilter()
		if got := pf != nil; got != tc.want {
			t.Errorf("%q: prefilter exists = %v (literals %q), want %v",
				tc.expr, got, pf.Literals(), tc.want)
		}
	}
}

// TestPrefilterLiteralsAreRequired: every derived literal must occur
// in every document the spanner matches — checked against the
// program's own evaluator over a small adversarial corpus.
func TestPrefilterLiteralsAreRequired(t *testing.T) {
	p := compileExpr(t, `.*ERROR x{[^\n]*}\n.*`)
	pf := p.Prefilter()
	if pf == nil {
		t.Fatal("expected a prefilter")
	}
	lits := pf.Literals()
	if len(lits) == 0 {
		t.Fatal("prefilter with no literals")
	}
	for _, l := range lits {
		for _, r := range l {
			if r > 127 {
				t.Fatalf("literal %q is not pure ASCII", l)
			}
		}
	}
	for i := 1; i < len(lits); i++ {
		if len(lits[i-1]) < len(lits[i]) {
			t.Fatalf("literals not longest-first: %q", lits)
		}
	}
	// Soundness on text: AllPresent(false) must imply "no match", which
	// here means every matching document contains every literal.
	for _, doc := range []string{
		"ERROR disk full\n",
		"prefix ERROR x\n suffix",
	} {
		if !pf.AllPresent(doc) {
			t.Errorf("matching document %q reported as missing a literal", doc)
		}
	}
	if pf.AllPresent("no trigger here") {
		t.Errorf("document without the literal passed AllPresent")
	}
}

// TestContainsProbeMatchesContains: containsProbe is an anchored
// reimplementation of strings.Contains — randomized cross-check plus
// the adversarial placements (needle at byte 0, at the end, probe
// byte dense in the haystack, overlapping false starts).
func TestContainsProbeMatchesContains(t *testing.T) {
	check := func(text, lit string) {
		t.Helper()
		off := rarestByte(lit)
		if got, want := containsProbe(text, lit, off), strings.Contains(text, lit); got != want {
			t.Fatalf("containsProbe(%q, %q, %d) = %v, strings.Contains = %v",
				text, lit, off, got, want)
		}
	}
	check("ERROR at start", "ERROR")
	check("ends with ERROR", "ERROR")
	check("no match at all", "ERROR")
	check("", "ERROR")
	check("EEEEERROR", "ERROR")                          // false starts on the probe byte
	check(strings.Repeat("ERRO", 100)+"R", "ERROR")      // overlap resolved only at the end
	check("eller: ", "eller: ")                          // probe lands mid-needle
	check(strings.Repeat(":", 50)+"eller: x", "eller: ") // dense probe byte
	check(strings.Repeat("e:l", 64), "eller: ")          // dense probe byte, absent needle
	rng := rand.New(rand.NewSource(7))
	alpha := "er:O "
	for i := 0; i < 2000; i++ {
		var tb, lb strings.Builder
		for n := rng.Intn(40); n > 0; n-- {
			tb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		for n := 1 + rng.Intn(6); n > 0; n-- {
			lb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		check(tb.String(), lb.String())
	}
}

// TestRarestByteRanking: the probe offset must prefer rare tiers
// (punctuation over digits over plain lowercase over "etaoinsrhl ")
// and break ties toward the earliest offset.
func TestRarestByteRanking(t *testing.T) {
	for _, tc := range []struct {
		lit  string
		want int
	}{
		{"eller: ", 5},  // ':' beats every letter and the space
		{"ERROR", 0},    // all uppercase: one tier, earliest wins
		{"error", 0},    // all high-frequency letters: earliest wins
		{"abc123", 3},   // digit tier beats lowercase
		{"hello, x", 5}, // comma is the only punctuation
		{"bug", 0},      // all plain lowercase: one tier, earliest wins
		{"log.gz", 3},   // '.' is the rarest tier
	} {
		if got := rarestByte(tc.lit); got != tc.want {
			t.Errorf("rarestByte(%q) = %d (byte %q), want %d (byte %q)",
				tc.lit, got, tc.lit[got], tc.want, tc.lit[tc.want])
		}
	}
}

// TestPrefilterCodecIdentity: the registry contract — a program
// decoded from its artifact derives byte-identical literals and probe
// offsets to the freshly compiled program it came from. The analysis
// is a pure function of the dispatch tables, so warm restarts cannot
// change prefilter behavior.
func TestPrefilterCodecIdentity(t *testing.T) {
	for _, expr := range []string{
		`.*ERROR x{[^\n]*}\n.*`,
		`.*Seller: x{[a-z]*}, ID.*`,
		`x{a*}`,
		`.*(ERROR |)x{a*}.*`,
	} {
		p := compileExpr(t, expr)
		d, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("%q: decode: %v", expr, err)
		}
		pf, df := p.Prefilter(), d.Prefilter()
		if (pf == nil) != (df == nil) {
			t.Fatalf("%q: compiled prefilter nil=%v, decoded nil=%v", expr, pf == nil, df == nil)
		}
		if pf == nil {
			continue
		}
		if !reflect.DeepEqual(pf.Literals(), df.Literals()) {
			t.Errorf("%q: literals diverge across codec: %q vs %q",
				expr, pf.Literals(), df.Literals())
		}
		if !reflect.DeepEqual(pf.probes, df.probes) {
			t.Errorf("%q: probe offsets diverge across codec: %v vs %v",
				expr, pf.probes, df.probes)
		}
	}
}
