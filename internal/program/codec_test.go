package program

import (
	"bytes"
	"errors"
	"testing"

	"spanners/internal/rgx"
	"spanners/internal/va"
)

// codecCorpus spans the structural range of compiled programs:
// multiple variables, optional fields, alternation, rune classes,
// non-sequential variable discipline, unicode classes.
var codecCorpus = []string{
	`x{a*}b`,
	`a*x{a*}a*`,
	`.*(Seller: x{[^,\n]*}, ID\d*(, \$y{[^\n]*}|)\n).*`,
	`(x{a}|y{b})(z{c}|w{d})`,
	`(x0{a}|x1{a}|x2{a}|b)*`,
	`x{\w+}\s+y{\d+}`,
	`[^a-z]*x{[a-z]+}[^a-z]*`,
	`abc`,
}

func compileCorpus(t *testing.T, expr string) *Program {
	t.Helper()
	p, err := Compile(va.FromRGX(rgx.MustParse(expr)))
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return p
}

func TestCodecRoundTrip(t *testing.T) {
	for _, expr := range codecCorpus {
		t.Run(expr, func(t *testing.T) {
			p := compileCorpus(t, expr)
			enc := p.Encode()
			q, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}

			// Stats must survive modulo CompileNS, which measures work
			// decoding deliberately skips.
			ws, gs := p.Stats(), q.Stats()
			ws.CompileNS, gs.CompileNS = 0, 0
			if ws != gs {
				t.Errorf("stats changed: %+v -> %+v", ws, gs)
			}
			if gs.CompileNS != 0 || q.Stats().CompileNS != 0 {
				t.Errorf("decoded CompileNS = %d, want 0", q.Stats().CompileNS)
			}

			// Re-encoding must be byte-identical (content addressing).
			if !bytes.Equal(enc, q.Encode()) {
				t.Error("re-encoding the decoded program is not byte-identical")
			}

			// Derived tables must be rebuilt exactly.
			if q.OpenedMask != p.OpenedMask {
				t.Errorf("OpenedMask %x -> %x", p.OpenedMask, q.OpenedMask)
			}
			for i := range p.rdelta {
				if !bytes.Equal(bitsBytes(p.rdelta[i]), bitsBytes(q.rdelta[i])) {
					t.Fatalf("rdelta[%d] diverges", i)
				}
			}
			for q1 := 0; q1 < p.NumStates; q1++ {
				if len(p.OpsInto(q1)) != len(q.OpsInto(q1)) {
					t.Fatalf("OpsInto(%d): %d -> %d edges", q1, len(p.OpsInto(q1)), len(q.OpsInto(q1)))
				}
				for i, e := range p.OpsInto(q1) {
					if q.OpsInto(q1)[i] != e {
						t.Fatalf("OpsInto(%d)[%d]: %+v -> %+v", q1, i, e, q.OpsInto(q1)[i])
					}
				}
			}
			if !bytes.Equal(bitsBytes(p.HasOps), bitsBytes(q.HasOps)) ||
				!bytes.Equal(bitsBytes(p.RHasOps), bitsBytes(q.RHasOps)) {
				t.Error("HasOps/RHasOps diverge")
			}
		})
	}
}

func bitsBytes(b Bits) []byte { return []byte(b.Key()) }

// TestCodecDeterministicAcrossCompiles pins the property content
// addressing depends on: compiling the same source twice yields
// byte-identical artifacts.
func TestCodecDeterministicAcrossCompiles(t *testing.T) {
	for _, expr := range codecCorpus {
		a := compileCorpus(t, expr).Encode()
		b := compileCorpus(t, expr).Encode()
		if !bytes.Equal(a, b) {
			t.Errorf("%q: two compiles encode differently", expr)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := compileCorpus(t, codecCorpus[2]).Encode()
	for _, n := range []int{0, 3, 4, 7, headerLen - 1, headerLen, headerLen + 5, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Errorf("Decode of %d/%d bytes succeeded", n, len(enc))
		} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Errorf("Decode of %d bytes: error %v is not typed", n, err)
		}
	}
	// Trailing garbage is rejected too, not ignored.
	if _, err := Decode(append(append([]byte{}, enc...), 0)); !errors.Is(err, ErrTruncated) {
		t.Errorf("trailing byte: %v, want ErrTruncated", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := compileCorpus(t, codecCorpus[2]).Encode()

	// Any single bit flip in the payload must trip the checksum.
	for _, off := range []int{headerLen, headerLen + 9, len(enc) - trailerLen - 1} {
		bad := append([]byte{}, enc...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, ErrChecksum) {
			t.Errorf("bit flip at %d: %v, want ErrChecksum", off, err)
		}
	}

	bad := append([]byte{}, enc...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte{}, enc...)
	bad[4] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: %v", err)
	}
}

// TestDecodeRejectsStructuralLies re-checksums after corrupting the
// payload so structural validation, not the checksum, must catch it.
func TestDecodeRejectsStructuralLies(t *testing.T) {
	p := compileCorpus(t, codecCorpus[2])

	tamper := func(t *testing.T, f func(q *Program)) error {
		t.Helper()
		q, err := Decode(p.Encode())
		if err != nil {
			t.Fatal(err)
		}
		f(q)
		_, err = Decode(q.Encode()) // Encode re-checksums the lie
		return err
	}

	cases := []struct {
		name string
		f    func(q *Program)
		want error
	}{
		{"start out of range", func(q *Program) { q.Start = q.NumStates }, ErrCorrupt},
		{"final bit past states", func(q *Program) {
			q.Final = append(Bits{}, q.Final...)
			q.Final.Set(len(q.Final)*64 - 1)
		}, ErrCorrupt},
		{"unsorted vars", func(q *Program) { q.Vars[0], q.Vars[1] = q.Vars[1], q.Vars[0] }, ErrCorrupt},
		{"op edge bad target", func(q *Program) {
			q.OpEdges = append([]OpEdge{}, q.OpEdges...)
			q.OpEdges[0].To = int32(q.NumStates)
		}, ErrCorrupt},
		{"op edge bad var", func(q *Program) {
			q.OpEdges = append([]OpEdge{}, q.OpEdges...)
			q.OpEdges[0].Var = MaxVars + 1
		}, ErrCorrupt},
		{"op heads decreasing", func(q *Program) {
			q.OpHead = append([]int32{}, q.OpHead...)
			q.OpHead[1] = q.OpHead[len(q.OpHead)-1] + 1
		}, ErrCorrupt},
		{"overlapping ranges", func(q *Program) {
			q.lo = append([]rune{}, q.lo...)
			q.lo[1] = q.lo[0]
		}, ErrCorrupt},
		{"range class out of range", func(q *Program) {
			q.cls = append([]uint16{}, q.cls...)
			q.cls[0] = uint16(q.NumClasses)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tamper(t, tc.f)
			if !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodedProgramEvaluates runs the decoded tables directly: every
// accessor the engines use must behave identically.
func TestDecodedProgramEvaluates(t *testing.T) {
	p := compileCorpus(t, `a*x{a*}b`)
	q, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range "abcz" {
		if p.ClassOf(r) != q.ClassOf(r) {
			t.Errorf("ClassOf(%q): %d -> %d", r, p.ClassOf(r), q.ClassOf(r))
		}
	}
	for s := 0; s < p.NumStates; s++ {
		for c := 0; c < p.NumClasses; c++ {
			if p.Succ(s, c).Key() != q.Succ(s, c).Key() || p.Pred(s, c).Key() != q.Pred(s, c).Key() {
				t.Fatalf("dispatch diverges at state %d class %d", s, c)
			}
		}
	}
	for _, v := range p.Vars {
		wi, wok := p.VarID(v)
		gi, gok := q.VarID(v)
		if wi != gi || wok != gok {
			t.Errorf("VarID(%q): (%d,%v) -> (%d,%v)", v, wi, wok, gi, gok)
		}
	}
}
