package program

// This file is the superinstruction peephole pass over the compiled
// instruction tables. It runs once, at the end of Compile and Decode,
// and derives two execution accelerators from the dense dispatch
// tables — nothing here changes semantics, only how fast the tables
// are walked:
//
//   - an ASCII classification table, so ClassOf is a single array
//     load for the bytes that dominate real documents instead of a
//     binary search over rune ranges;
//
//   - fused letter runs: maximal chains q0 → q1 → … → qk of states
//     whose only outgoing transition is a single letter class to a
//     single successor, with no variable operations and no accepting
//     state strictly inside the chain. Such a chain is the compiled
//     form of a literal substring ("Seller: ", a log prefix, a DNA
//     motif); the lazy DFA executes the whole chain as one
//     superinstruction — compare the next k rune classes against the
//     recorded sequence — instead of k frontier steps.
//
// Soundness of run fusion: a run only fires when the determinized
// frontier is exactly the singleton {q0} after boundary closure.
// Because every chain state has no op edges, the boundary closures
// inside the chain are identities; because the chain states have
// exactly one outgoing class, any rune outside that class kills the
// frontier (reject); and because interior states are non-final, a
// document ending strictly inside the chain rejects too. All three
// outcomes are exactly what per-rune stepping would produce.

// maxRunLen caps the length of one fused run, bounding both the
// peephole pass and the worst-case comparison a single
// superinstruction performs before the engine regains control.
const maxRunLen = 64

// fusedRun is one superinstruction: consume len(classes) runes whose
// equivalence classes match in order, landing in state to.
type fusedRun struct {
	classes []uint16
	to      int32
}

// finishTables derives the execution accelerators from the decoded or
// compiled dispatch tables. It must be called exactly once, before
// the program is published.
func (p *Program) finishTables() {
	// ASCII fast classification.
	for i := range p.asciiClass {
		p.asciiClass[i] = -1
	}
	for i := range p.lo {
		lo, hi := p.lo[i], p.hi[i]
		if lo >= 128 {
			continue
		}
		if hi > 127 {
			hi = 127
		}
		for r := lo; r <= hi; r++ {
			p.asciiClass[r] = int16(p.cls[i])
		}
	}

	// Single-exit map: out[q] = (class, successor) when state q has
	// exactly one outgoing letter class and that class has exactly one
	// successor; otherwise class = -1.
	type exit struct {
		class int32
		to    int32
	}
	out := make([]exit, p.NumStates)
	for q := 0; q < p.NumStates; q++ {
		out[q] = exit{class: -1}
		seen := 0
		for c := 0; c < p.NumClasses && seen <= 1; c++ {
			bs := p.delta[q*p.NumClasses+c]
			if !bs.Any() {
				continue
			}
			seen++
			if bs.Count() != 1 {
				seen = 2 // multiple successors: not fusable
				break
			}
			to := -1
			bs.ForEach(func(i int) { to = i })
			out[q] = exit{class: int32(c), to: int32(to)}
		}
		if seen != 1 {
			out[q] = exit{class: -1}
		}
	}

	// interior reports whether the chain may continue through q:
	// single exit, no variable operations, not accepting.
	interior := func(q int32) bool {
		return out[q].class >= 0 && !p.HasOps.Has(int(q)) && !p.Final.Has(int(q))
	}

	// Fused runs. A head must be operation-free (a closed singleton
	// frontier {q} cannot exist otherwise) but may be accepting — the
	// engine checks acceptance before consuming input.
	p.runOf = make([]int32, p.NumStates)
	for q := range p.runOf {
		p.runOf[q] = -1
	}
	for q := 0; q < p.NumStates; q++ {
		if out[q].class < 0 || p.HasOps.Has(q) {
			continue
		}
		classes := []uint16{uint16(out[q].class)}
		cur := out[q].to
		onChain := map[int32]bool{int32(q): true, cur: true}
		for len(classes) < maxRunLen && interior(cur) && !onChain[out[cur].to] {
			classes = append(classes, uint16(out[cur].class))
			cur = out[cur].to
			onChain[cur] = true
		}
		if len(classes) < 2 {
			continue // a single letter step gains nothing from fusion
		}
		p.runOf[q] = int32(len(p.runs))
		p.runs = append(p.runs, fusedRun{classes: classes, to: cur})
	}
	p.stats.FusedRuns = len(p.runs)
}

// FusedRunOf returns the superinstruction starting at state q: the
// rune-class sequence it consumes and the landing state. ok is false
// when no fused run starts at q. The returned slice is shared and
// must not be modified.
func (p *Program) FusedRunOf(q int) (classes []uint16, to int, ok bool) {
	if q < 0 || q >= len(p.runOf) || p.runOf[q] < 0 {
		return nil, 0, false
	}
	r := p.runs[p.runOf[q]]
	return r.classes, int(r.to), true
}
