package program

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"unicode/utf8"

	"spanners/internal/span"
)

// This file is the serialization of a compiled program: the artifact
// a persistent spanner registry stores and a restarted service loads
// back without re-running the parse → decompose → VA-compile
// pipeline. The format is deterministic — encoding the same program
// twice yields identical bytes, and compiling the same source yields
// the same program — so registry versions can be content-addressed
// and re-registering an identical expression is idempotent.
//
// Layout (all integers little-endian, fixed width):
//
//	magic   [4]byte  "SPRG"
//	version uint16   codecVersion
//	_       uint16   reserved, must be zero
//	length  uint64   payload length in bytes
//	payload [length]byte
//	check   uint64   FNV-64a of payload
//
// The payload holds the irreducible fields of the program — dense
// state counts, variable names, rune-class ranges, forward dispatch
// bitsets, forward CSR op edges — in a fixed order; every derived
// table (reverse dispatch, reverse CSR, op masks, HasOps bits,
// statistics) is recomputed on decode. Decode trusts nothing: sizes
// are bounded, offsets are range-checked, invariants (sorted
// variables, disjoint ordered ranges, monotone CSR heads, zeroed
// bitset padding) are verified, and any violation returns a typed
// error instead of a panic or a silently broken program.

// codecVersion is the current artifact format version. Decode rejects
// any other value with ErrVersion.
const codecVersion = 1

// Typed decode errors. Callers (the registry, the service pre-warm
// path) match these with errors.Is to distinguish "stale format" from
// "bit rot" from "not an artifact at all"; all of them mean the
// artifact is unusable and the spanner must be recompiled from source.
var (
	ErrBadMagic  = errors.New("program: not a compiled-program artifact")
	ErrVersion   = errors.New("program: unsupported artifact version")
	ErrTruncated = errors.New("program: truncated artifact")
	ErrChecksum  = errors.New("program: artifact checksum mismatch")
	ErrCorrupt   = errors.New("program: corrupt artifact")
	ErrTooLarge  = errors.New("program: artifact exceeds decode limits")
)

// Decode limits. They bound allocation before any table is built, so
// a hostile length field cannot balloon memory; maxDeltaWords is the
// same budget Compile enforces.
const (
	maxDecodeStates  = 1 << 20
	maxDecodeRanges  = 1 << 20
	maxDecodeOpEdges = 1 << 22
	maxVarNameBytes  = 1 << 12
)

var magic = [4]byte{'S', 'P', 'R', 'G'}

const (
	headerLen  = 4 + 2 + 2 + 8
	trailerLen = 8
)

// Encode serializes the program. The output is deterministic: the
// same program always encodes to the same bytes.
func (p *Program) Encode() []byte {
	words := (p.NumStates + 63) / 64

	payloadLen := 7 * 4 // fixed u32 counters
	for _, v := range p.Vars {
		payloadLen += 4 + len(v)
	}
	payloadLen += words * 8                              // final
	payloadLen += len(p.lo) * (4 + 4 + 2)                // ranges
	payloadLen += p.NumStates * p.NumClasses * words * 8 // delta
	payloadLen += (p.NumStates + 1) * 4                  // op heads
	payloadLen += len(p.OpEdges) * (4 + 1 + 1)           // op edges

	buf := make([]byte, 0, headerLen+payloadLen+trailerLen)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payloadLen))

	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NumStates))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Start))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NumClasses))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Vars)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.lo)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.OpEdges)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.stats.LetterEdges))

	for _, v := range p.Vars {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	for _, w := range p.Final {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for i := range p.lo {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.lo[i]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.hi[i]))
		buf = binary.LittleEndian.AppendUint16(buf, p.cls[i])
	}
	for _, bs := range p.delta {
		for _, w := range bs {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	for _, h := range p.OpHead {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(h))
	}
	for _, e := range p.OpEdges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
		open := byte(0)
		if e.Open {
			open = 1
		}
		buf = append(buf, e.Var, open)
	}

	h := fnv.New64a()
	h.Write(buf[headerLen:])
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

// reader is a bounds-checked cursor over the payload. Every read
// failure latches err; callers check it once at the end of a section.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// corrupt builds an ErrCorrupt with a human-readable cause.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Decode parses an artifact produced by Encode, validating every
// structural invariant before building the derived tables. It never
// panics on hostile input: any malformed, truncated, oversized or
// bit-flipped artifact yields one of the typed errors above.
func Decode(data []byte) (*Program, error) {
	if len(data) < headerLen+trailerLen {
		if len(data) < 4 || string(data[:4]) != string(magic[:]) {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if string(data[:4]) != string(magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != codecVersion {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, codecVersion)
	}
	if binary.LittleEndian.Uint16(data[6:]) != 0 {
		return nil, corrupt("nonzero reserved header field")
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:])
	if payloadLen > uint64(len(data)) || int(payloadLen) != len(data)-headerLen-trailerLen {
		return nil, fmt.Errorf("%w: payload length %d does not match %d artifact bytes",
			ErrTruncated, payloadLen, len(data))
	}
	payload := data[headerLen : headerLen+int(payloadLen)]
	h := fnv.New64a()
	h.Write(payload)
	if got := binary.LittleEndian.Uint64(data[len(data)-trailerLen:]); got != h.Sum64() {
		return nil, ErrChecksum
	}

	r := &reader{buf: payload}
	numStates := int(r.u32())
	start := int(r.u32())
	numClasses := int(r.u32())
	numVars := int(r.u32())
	numRanges := int(r.u32())
	numOpEdges := int(r.u32())
	letterEdges := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	switch {
	case numStates < 1 || numStates > maxDecodeStates:
		return nil, fmt.Errorf("%w: %d states", ErrTooLarge, numStates)
	case numClasses < 0 || numClasses > 1<<16:
		return nil, fmt.Errorf("%w: %d rune classes", ErrTooLarge, numClasses)
	case numVars < 0 || numVars > MaxVars:
		return nil, fmt.Errorf("%w: %d variables exceed the %d-variable budget", ErrTooLarge, numVars, MaxVars)
	case numRanges < 0 || numRanges > maxDecodeRanges:
		return nil, fmt.Errorf("%w: %d rune ranges", ErrTooLarge, numRanges)
	case numOpEdges < 0 || numOpEdges > maxDecodeOpEdges:
		return nil, fmt.Errorf("%w: %d op edges", ErrTooLarge, numOpEdges)
	}
	if start >= numStates {
		return nil, corrupt("start state %d out of %d states", start, numStates)
	}
	words := (numStates + 63) / 64
	if total := 2 * numStates * numClasses * words; total > maxDeltaWords {
		return nil, fmt.Errorf("%w: dispatch table of %d words", ErrTooLarge, total)
	}

	p := &Program{
		NumStates:  numStates,
		Start:      start,
		NumClasses: numClasses,
	}

	// Variables: strictly ascending (VarID binary-searches them).
	p.Vars = make([]span.Var, numVars)
	for i := range p.Vars {
		n := int(r.u32())
		if n > maxVarNameBytes {
			return nil, fmt.Errorf("%w: %d-byte variable name", ErrTooLarge, n)
		}
		b := r.bytes(n)
		if r.err != nil {
			return nil, r.err
		}
		if !utf8.Valid(b) {
			return nil, corrupt("variable %d is not valid UTF-8", i)
		}
		p.Vars[i] = span.Var(b)
		if i > 0 && p.Vars[i] <= p.Vars[i-1] {
			return nil, corrupt("variables not strictly sorted at index %d", i)
		}
	}

	// Accepting states.
	p.Final = make(Bits, words)
	for i := range p.Final {
		p.Final[i] = r.u64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if err := checkPadding(p.Final, numStates); err != nil {
		return nil, err
	}

	// Rune classification ranges: valid runes, lo ≤ hi, strictly
	// increasing and disjoint, class ids in range.
	p.lo = make([]rune, numRanges)
	p.hi = make([]rune, numRanges)
	p.cls = make([]uint16, numRanges)
	for i := 0; i < numRanges; i++ {
		lo := int64(r.u32())
		hi := int64(r.u32())
		cls := r.u16()
		if r.err != nil {
			return nil, r.err
		}
		if lo > hi || hi > utf8.MaxRune {
			return nil, corrupt("rune range %d: [%d, %d]", i, lo, hi)
		}
		if i > 0 && lo <= int64(p.hi[i-1]) {
			return nil, corrupt("rune ranges overlap or are unsorted at index %d", i)
		}
		if int(cls) >= numClasses {
			return nil, corrupt("rune range %d names class %d of %d", i, cls, numClasses)
		}
		p.lo[i], p.hi[i], p.cls[i] = rune(lo), rune(hi), cls
	}

	// Forward letter dispatch; the reverse tables are derived below.
	backing := make([]uint64, 2*numStates*numClasses*words)
	p.delta = make([]Bits, numStates*numClasses)
	p.rdelta = make([]Bits, numStates*numClasses)
	for i := range p.delta {
		p.delta[i] = Bits(backing[i*words : (i+1)*words])
	}
	off := numStates * numClasses * words
	for i := range p.rdelta {
		p.rdelta[i] = Bits(backing[off+i*words : off+(i+1)*words])
	}
	for i := range p.delta {
		for wi := 0; wi < words; wi++ {
			p.delta[i][wi] = r.u64()
		}
		if r.err != nil {
			return nil, r.err
		}
		if err := checkPadding(p.delta[i], numStates); err != nil {
			return nil, err
		}
	}

	// Forward CSR op heads and edges.
	p.OpHead = make([]int32, numStates+1)
	for i := range p.OpHead {
		h := r.u32()
		if h > uint32(numOpEdges) {
			return nil, corrupt("op head %d exceeds %d edges", h, numOpEdges)
		}
		p.OpHead[i] = int32(h)
		if i > 0 && p.OpHead[i] < p.OpHead[i-1] {
			return nil, corrupt("op heads decrease at state %d", i)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if p.OpHead[0] != 0 || int(p.OpHead[numStates]) != numOpEdges {
		return nil, corrupt("op heads cover [%d, %d] of %d edges", p.OpHead[0], p.OpHead[numStates], numOpEdges)
	}
	p.OpEdges = make([]OpEdge, numOpEdges)
	for i := range p.OpEdges {
		to := r.u32()
		rest := r.bytes(2)
		if r.err != nil {
			return nil, r.err
		}
		if int(to) >= numStates {
			return nil, corrupt("op edge %d targets state %d of %d", i, to, numStates)
		}
		v, open := rest[0], rest[1]
		if int(v) >= numVars {
			return nil, corrupt("op edge %d names variable %d of %d", i, v, numVars)
		}
		if open > 1 {
			return nil, corrupt("op edge %d has open flag %d", i, open)
		}
		e := OpEdge{To: int32(to), Var: v, Open: open == 1}
		if e.Open {
			e.Mask = OpenBit(int(v))
		} else {
			e.Mask = CloseBit(int(v))
		}
		p.OpEdges[i] = e
	}

	if r.off != len(payload) {
		return nil, corrupt("%d trailing payload bytes", len(payload)-r.off)
	}
	if letterEdges < 0 {
		return nil, corrupt("negative letter-edge count")
	}

	// Derived tables: reverse dispatch, reverse CSR, op masks, HasOps.
	for q := 0; q < numStates; q++ {
		for c := 0; c < numClasses; c++ {
			p.delta[q*numClasses+c].ForEach(func(to int) {
				p.rdelta[to*numClasses+c].Set(q)
			})
		}
	}
	rcounts := make([]int32, numStates+1)
	for _, e := range p.OpEdges {
		rcounts[e.To+1]++
	}
	for q := 0; q < numStates; q++ {
		rcounts[q+1] += rcounts[q]
	}
	p.ROpHead = rcounts
	p.ROpEdges = make([]OpEdge, numOpEdges)
	rfill := make([]int32, numStates)
	for q := 0; q < numStates; q++ {
		for _, e := range p.OpsFrom(q) {
			re := e
			re.To = int32(q)
			to := e.To
			p.ROpEdges[p.ROpHead[to]+rfill[to]] = re
			rfill[to]++
		}
		for _, e := range p.OpsFrom(q) {
			if e.Open {
				p.OpenedMask |= OpenBit(int(e.Var))
			}
		}
	}
	p.HasOps = NewBits(numStates)
	p.RHasOps = NewBits(numStates)
	for q := 0; q < numStates; q++ {
		if p.OpHead[q+1] > p.OpHead[q] {
			p.HasOps.Set(q)
		}
		if p.ROpHead[q+1] > p.ROpHead[q] {
			p.RHasOps.Set(q)
		}
	}

	p.stats = Stats{
		States:      numStates,
		Classes:     numClasses,
		Vars:        numVars,
		OpEdges:     numOpEdges,
		LetterEdges: letterEdges,
		DeltaWords:  len(backing),
		// CompileNS measures lowering work, which decoding skips — that
		// is the point of the artifact — so it stays zero.
	}
	p.finishTables()
	return p, nil
}

// checkPadding rejects bitsets with bits set at or beyond n: they
// would name states that do not exist and break byte-identical
// re-encoding.
func checkPadding(b Bits, n int) error {
	for i := n; i < len(b)*64; i++ {
		if b.Has(i) {
			return corrupt("bitset names state %d of %d", i, n)
		}
	}
	return nil
}
