package program

import (
	"bytes"
	"testing"

	"spanners/internal/rgx"
	"spanners/internal/span"
	"spanners/internal/va"
)

// FuzzDecode throws arbitrary bytes at the artifact decoder. The
// invariants: Decode never panics, never hangs on bounded input, and
// anything it accepts must re-encode byte-identically (otherwise
// content addressing would drift) and pass Decode again.
func FuzzDecode(f *testing.F) {
	for _, expr := range codecCorpus {
		p, err := Compile(va.FromRGX(rgx.MustParse(expr)))
		if err != nil {
			f.Fatal(err)
		}
		enc := p.Encode()
		f.Add(enc)
		// Truncations at structurally interesting places.
		for _, n := range []int{0, 3, headerLen, headerLen + 13, len(enc) / 2, len(enc) - 9, len(enc) - 1} {
			if n >= 0 && n <= len(enc) {
				f.Add(enc[:n])
			}
		}
		// A few deterministic corruptions.
		for _, off := range []int{5, headerLen + 1, len(enc) - trailerLen} {
			bad := append([]byte{}, enc...)
			bad[off] ^= 0xff
			f.Add(bad)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if p != nil {
				t.Fatal("Decode returned both a program and an error")
			}
			return
		}
		re := p.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted artifact re-encodes differently (%d -> %d bytes)", len(data), len(re))
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded artifact rejected: %v", err)
		}
	})
}

// FuzzDecodeDFA throws arbitrary bytes at the DFA-cache sidecar
// decoder. The invariants: WarmFromArtifact never panics, rejects
// hostile input with a typed error, and anything it accepts leaves
// the cache semantically intact — the warmed DFA must still agree
// with direct bitset stepping (transitions are recomputed, never
// trusted, so even an accepted artifact cannot corrupt execution).
func FuzzDecodeDFA(f *testing.F) {
	for _, expr := range codecCorpus {
		p, err := Compile(va.FromRGX(rgx.MustParse(expr)))
		if err != nil {
			f.Fatal(err)
		}
		// A genuinely warmed cache artifact, plus structural
		// truncations and deterministic corruptions of it.
		warm := NewDFA(p, 64)
		warm.Match(span.NewDocument("Seller: ab, ID1\naba"))
		enc := warm.Encode()
		f.Add(enc)
		for _, n := range []int{0, 3, headerLen, headerLen + 7, headerLen + 19, len(enc) / 2, len(enc) - 9, len(enc) - 1} {
			if n >= 0 && n <= len(enc) {
				f.Add(enc[:n])
			}
		}
		for _, off := range []int{5, headerLen + 1, headerLen + 17, len(enc) - trailerLen} {
			if off < len(enc) {
				bad := append([]byte{}, enc...)
				bad[off] ^= 0xff
				f.Add(bad)
			}
		}
	}

	target, err := Compile(va.FromRGX(rgx.MustParse(codecCorpus[2])))
	if err != nil {
		f.Fatal(err)
	}
	probe := span.NewDocument("Seller: ab, ID1\n")
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDFA(target, 64)
		if _, err := d.WarmFromArtifact(data); err != nil {
			return
		}
		// Accepted: the warmed cache must still execute correctly.
		got, ok := d.Match(probe)
		if !ok {
			return
		}
		if want := matchDirect(target, probe); got != want {
			t.Fatalf("warmed cache diverges from direct stepping: %v vs %v", got, want)
		}
	})
}
