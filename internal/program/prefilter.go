package program

import (
	"sort"
	"strings"
)

// This file is the required-literal prefilter: a program-level
// analysis extending the fusion pass's literal-run detection
// (fuse.go) into a per-spanner set of mandatory literals, compiled
// into a multi-literal absence scanner.
//
// A fused run is the compiled form of a literal substring when every
// rune class along the chain contains exactly one ASCII rune. Such a
// run is *required* when its head state is unavoidable: every path
// from the start state to an accepting state — over letter edges of
// any class and over variable-operation edges — passes through the
// head. Since the head is operation-free, non-final, and has the run
// as its only continuation, any accepting run of the automaton must
// read the literal somewhere in the document. Contrapositive: a
// document not containing every required literal has an empty
// spanner result, for every candidate mapping µ — so Eval,
// Enumerate, and Count can all reject it with a handful of
// memchr-backed substring scans and never touch the DFA.
//
// The analysis is a pure function of the compiled dispatch tables,
// so a decoded (registry-warmed) program derives exactly the same
// literal set as a freshly compiled one — the property the registry
// round-trip check asserts.

// maxPrefilterLiterals caps the scanner's literal set; beyond it the
// longest literals win (longer needles are rarer and make
// strings.Contains skip further).
const maxPrefilterLiterals = 8

// maxPrefilterStates bounds the per-run unavoidability BFS; programs
// beyond it skip the analysis (compile time stays linear-ish).
const maxPrefilterStates = 1 << 12

// minPrefilterLiteralLen is the shortest literal worth scanning for:
// single bytes are usually too dense to prune anything.
const minPrefilterLiteralLen = 2

// Prefilter is the compiled required-literal scanner of one program.
// Every literal in the set must occur in any document the spanner
// matches with any mapping; the zero set is represented by a nil
// *Prefilter. Immutable and safe for concurrent use.
type Prefilter struct {
	literals []string // longest first
	probes   []int    // per literal: offset of its rarest byte
}

// Prefilter returns the program's required-literal scanner, derived
// on first use, or nil when the analysis found no usable literal.
// The result is shared; equal programs (compiled or decoded) derive
// equal literal sets.
func (p *Program) Prefilter() *Prefilter {
	p.prefOnce.Do(func() { p.pref = buildPrefilter(p) })
	return p.pref
}

// Literals returns the required literals, longest first. The slice
// is a copy; the literals themselves are pure ASCII.
func (pf *Prefilter) Literals() []string {
	if pf == nil {
		return nil
	}
	return append([]string(nil), pf.literals...)
}

// AllPresent reports whether every required literal occurs in text.
// False means the spanner's result on the document is empty — no
// mapping, no count, no match — regardless of constraints. Each
// literal is found by probing for its statically rarest byte with
// strings.IndexByte (a memchr-grade scan) and verifying the window
// around each hit, so common first bytes like 'e' or ' ' don't drag
// the search into a false-start compare per occurrence. ASCII
// needles make the byte-level scan exact on UTF-8 text.
func (pf *Prefilter) AllPresent(text string) bool {
	for i, l := range pf.literals {
		if !containsProbe(text, l, pf.probes[i]) {
			return false
		}
	}
	return true
}

// containsProbe is strings.Contains anchored on the needle byte at
// offset off: IndexByte hops between probe occurrences, each verified
// with one window compare.
func containsProbe(text, lit string, off int) bool {
	probe := lit[off]
	for k := 0; k < len(text); {
		j := strings.IndexByte(text[k:], probe)
		if j < 0 {
			return false
		}
		start := k + j - off
		if start >= 0 && start+len(lit) <= len(text) && text[start:start+len(lit)] == lit {
			return true
		}
		k += j + 1
	}
	return false
}

// byteRank scores how common a byte is in typical text and log
// corpora; lower is rarer. Rough tiers suffice — the probe byte only
// needs to stay out of the high-frequency tier, so a literal like
// "eller: " probes on ':' instead of 'e'.
func byteRank(b byte) int {
	switch {
	case strings.IndexByte("etaoinsrhl ", b) >= 0:
		return 3
	case 'a' <= b && b <= 'z' || b == '\n' || b == '\t':
		return 2
	case '0' <= b && b <= '9' || 'A' <= b && b <= 'Z':
		return 1
	default:
		return 0
	}
}

// rarestByte returns the offset of the literal's rarest byte; ties
// break toward the earliest occurrence.
func rarestByte(lit string) int {
	best := 0
	for i := 1; i < len(lit); i++ {
		if byteRank(lit[i]) < byteRank(lit[best]) {
			best = i
		}
	}
	return best
}

// buildPrefilter runs the required-literal analysis.
func buildPrefilter(p *Program) *Prefilter {
	if len(p.runs) == 0 || p.NumStates > maxPrefilterStates {
		return nil
	}
	byteOf := concreteClassBytes(p)

	var lits []string
	for q := 0; q < p.NumStates; q++ {
		ri := p.runOf[q]
		if ri < 0 || p.Final.Has(q) {
			// A final head lets an accepting run end before reading
			// the literal, so the literal is not mandatory.
			continue
		}
		run := p.runs[ri]
		buf := make([]byte, 0, len(run.classes))
		concrete := true
		for _, c := range run.classes {
			b := byteOf[c]
			if b < 0 {
				concrete = false
				break
			}
			buf = append(buf, byte(b))
		}
		if !concrete || len(buf) < minPrefilterLiteralLen {
			continue
		}
		if !p.unavoidable(q) {
			continue
		}
		lits = append(lits, string(buf))
	}
	lits = normalizeLiterals(lits)
	if len(lits) == 0 {
		return nil
	}
	probes := make([]int, len(lits))
	for i, l := range lits {
		probes[i] = rarestByte(l)
	}
	return &Prefilter{literals: lits, probes: probes}
}

// concreteClassBytes maps each rune class to its single ASCII byte,
// or -1 when the class contains more than one rune or any non-ASCII
// rune. Only singleton classes denote a fixed document byte.
func concreteClassBytes(p *Program) []int16 {
	byteOf := make([]int16, p.NumClasses)
	width := make([]int64, p.NumClasses)
	for i := range byteOf {
		byteOf[i] = -1
	}
	for i := range p.lo {
		c := p.cls[i]
		width[c] += int64(p.hi[i]-p.lo[i]) + 1
		if width[c] == 1 && p.lo[i] < 128 {
			byteOf[c] = int16(p.lo[i])
		} else {
			byteOf[c] = -1
		}
	}
	return byteOf
}

// unavoidable reports whether every start→final path of the program
// graph passes through state q: BFS from the start over all letter
// and op edges with q removed; q is unavoidable iff no accepting
// state remains reachable. (If q is the start itself nothing is
// reachable without it.)
func (p *Program) unavoidable(q int) bool {
	if p.Start == q {
		return true // every path begins at q
	}
	seen := NewBits(p.NumStates)
	seen.Set(p.Start)
	stack := []int32{int32(p.Start)}
	push := func(t int32) {
		if int(t) != q && !seen.Has(int(t)) {
			seen.Set(int(t))
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		s := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		for c := 0; c < p.NumClasses; c++ {
			p.Succ(s, c).ForEach(func(t int) { push(int32(t)) })
		}
		for _, e := range p.OpsFrom(s) {
			push(e.To)
		}
	}
	return !seen.Intersects(p.Final)
}

// normalizeLiterals sorts longest-first, drops duplicates and
// literals contained in a longer kept literal (their presence is
// implied), and applies the scanner cap.
func normalizeLiterals(lits []string) []string {
	sort.Slice(lits, func(i, j int) bool {
		if len(lits[i]) != len(lits[j]) {
			return len(lits[i]) > len(lits[j])
		}
		return lits[i] < lits[j]
	})
	kept := lits[:0]
	for _, l := range lits {
		implied := false
		for _, k := range kept {
			if strings.Contains(k, l) {
				implied = true
				break
			}
		}
		if !implied {
			kept = append(kept, l)
		}
		if len(kept) == maxPrefilterLiterals {
			break
		}
	}
	return kept
}
