package workload

import (
	"strings"
	"testing"
)

func TestLandRegistryShape(t *testing.T) {
	text := LandRegistry(LandRegistryOptions{Rows: 40, TaxProb: 0.5, Seed: 1})
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 40 {
		t.Fatalf("rows = %d", len(lines))
	}
	sellers, buyers, taxed := 0, 0, 0
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "Seller: "):
			sellers++
			if strings.Contains(l, "$") {
				taxed++
			}
		case strings.HasPrefix(l, "Buyer: "):
			buyers++
			if !strings.Contains(l, ", P") {
				t.Errorf("buyer row without property field: %q", l)
			}
		default:
			t.Errorf("unexpected row %q", l)
		}
	}
	if sellers == 0 || buyers == 0 {
		t.Error("both row kinds must appear")
	}
	if taxed == 0 || taxed == sellers {
		t.Errorf("tax field should be optional: %d of %d sellers taxed", taxed, sellers)
	}
}

func TestLandRegistryDeterministic(t *testing.T) {
	a := LandRegistry(LandRegistryOptions{Rows: 10, TaxProb: 0.3, Seed: 7})
	b := LandRegistry(LandRegistryOptions{Rows: 10, TaxProb: 0.3, Seed: 7})
	if a != b {
		t.Error("same seed must give same document")
	}
	c := LandRegistry(LandRegistryOptions{Rows: 10, TaxProb: 0.3, Seed: 8})
	if a == c {
		t.Error("different seed should give different document")
	}
}

func TestWebLogShape(t *testing.T) {
	text := WebLog(WebLogOptions{Lines: 30, ReferProb: 0.4, Seed: 2})
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("lines = %d", len(lines))
	}
	withRef := 0
	for _, l := range lines {
		if !strings.Contains(l, "\"") {
			t.Errorf("line without agent: %q", l)
		}
		if strings.Contains(l, " ref=") {
			withRef++
		}
	}
	if withRef == 0 || withRef == len(lines) {
		t.Errorf("referer should be optional: %d/%d", withRef, len(lines))
	}
}

func TestDNA(t *testing.T) {
	s := DNA(500, "ACGTACGT", 3, 3)
	if len(s) != 500 {
		t.Fatalf("len = %d", len(s))
	}
	for _, r := range s {
		switch r {
		case 'A', 'C', 'G', 'T':
		default:
			t.Fatalf("unexpected base %q", r)
		}
	}
	if !strings.Contains(s, "ACGTACGT") {
		t.Error("motif not planted")
	}
}

func TestRepeatRow(t *testing.T) {
	if got := RepeatRow("ab", 3); got != "ababab" {
		t.Errorf("RepeatRow = %q", got)
	}
}
