// Package workload generates synthetic documents for the examples,
// tests and benchmarks. The land-registry generator reproduces the
// shape of the paper's Table 1 — CSV-like rows about buying and
// selling property where the tax field is optional — which is the
// motivating workload for mapping-based (incomplete-information)
// extraction. Web-log and DNA-like generators give two further
// realistic document families with optional and repetitive structure.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

var firstNames = []string{
	"John", "Marcelo", "Mark", "Ana", "Lucia", "Pedro", "Sofia",
	"Diego", "Elena", "Tomas", "Carla", "Ivan", "Nadia", "Oscar",
}

var lastNames = []string{
	"Silva", "Rojas", "Munoz", "Diaz", "Perez", "Vidal", "Reyes",
	"Fuentes", "Castro", "Lagos", "Pinto", "Soto",
}

// LandRegistryOptions configures the Table 1 generator.
type LandRegistryOptions struct {
	Rows    int
	TaxProb float64 // probability a seller row carries the tax field
	Seed    int64
}

// LandRegistry produces a document like the paper's Table 1:
//
//	Seller: John Silva, ID75
//	Buyer: Marcelo Rojas, ID832, P78
//	Seller: Mark Munoz, ID7, $35,000
//
// Seller rows carry an optional tax amount (with thousands commas,
// exactly the wrinkle that motivates mapping semantics: a fixed-arity
// relation cannot represent "name always, tax sometimes").
func LandRegistry(opt LandRegistryOptions) string {
	rng := rand.New(rand.NewSource(opt.Seed))
	var b strings.Builder
	for i := 0; i < opt.Rows; i++ {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		id := rng.Intn(1000)
		if i%2 == 0 {
			fmt.Fprintf(&b, "Seller: %s, ID%d", name, id)
			if rng.Float64() < opt.TaxProb {
				fmt.Fprintf(&b, ", $%d,%03d", rng.Intn(900)+1, rng.Intn(1000))
			}
		} else {
			fmt.Fprintf(&b, "Buyer: %s, ID%d, P%d", name, id, rng.Intn(100))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var (
	methods = []string{"GET", "POST", "PUT", "DELETE"}
	paths   = []string{"/", "/index.html", "/api/items", "/api/users", "/static/app.js", "/health"}
	agents  = []string{"curl/8.0", "Mozilla/5.0", "Go-http-client/1.1"}
)

// WebLogOptions configures the web-log generator.
type WebLogOptions struct {
	Lines     int
	ReferProb float64 // probability a line carries a referer field
	Seed      int64
}

// WebLog produces access-log-like lines with an optional trailing
// referer field:
//
//	192.168.3.7 GET /api/items 200 1532 "Mozilla/5.0"
//	10.0.0.9 POST /api/users 503 87 "curl/8.0" ref=/index.html
func WebLog(opt WebLogOptions) string {
	rng := rand.New(rand.NewSource(opt.Seed))
	var b strings.Builder
	for i := 0; i < opt.Lines; i++ {
		fmt.Fprintf(&b, "%d.%d.%d.%d %s %s %d %d \"%s\"",
			rng.Intn(224)+1, rng.Intn(256), rng.Intn(256), rng.Intn(256),
			methods[rng.Intn(len(methods))],
			paths[rng.Intn(len(paths))],
			[]int{200, 200, 200, 301, 404, 503}[rng.Intn(6)],
			rng.Intn(100_000),
			agents[rng.Intn(len(agents))])
		if rng.Float64() < opt.ReferProb {
			fmt.Fprintf(&b, " ref=%s", paths[rng.Intn(len(paths))])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DNA produces a random string over {A, C, G, T} with occasional
// known motifs planted, a classic span-extraction target.
func DNA(length int, motif string, motifs int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	bases := []byte("ACGT")
	buf := make([]byte, length)
	for i := range buf {
		buf[i] = bases[rng.Intn(4)]
	}
	for i := 0; i < motifs && len(motif) > 0 && len(motif) < length; i++ {
		at := rng.Intn(length - len(motif))
		copy(buf[at:], motif)
	}
	return string(buf)
}

// RepeatRow builds a document of n copies of row, the simplest
// scaling knob for throughput benchmarks.
func RepeatRow(row string, n int) string {
	var b strings.Builder
	b.Grow(len(row) * n)
	for i := 0; i < n; i++ {
		b.WriteString(row)
	}
	return b.String()
}
