// Package docstore is the bounded in-memory store behind the
// /v1/documents API: named, versioned documents that are edited by
// byte-offset splices rather than re-uploaded, so the service can
// maintain extraction results incrementally instead of recomputing
// them from byte 0 on every change.
//
// The store holds three things per document: the text, a short
// journal of recent splices (so extraction state attached at an older
// version can catch up by replaying edits instead of rebuilding), and
// a small set of opaque attachments keyed by compiled-program
// fingerprint (the service parks its incremental sessions there).
// Everything is accounted against one byte budget with LRU eviction
// of whole documents, so a long-running server cannot be grown
// without bound by PUTs.
package docstore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"unicode/utf8"
)

// Typed errors, mapped to stable API error codes by the server.
var (
	// ErrNotFound reports an unknown document id.
	ErrNotFound = errors.New("docstore: document not found")
	// ErrTooLarge reports a document that cannot fit the byte budget
	// even with every other document evicted.
	ErrTooLarge = errors.New("docstore: document exceeds the store's byte budget")
	// ErrBadSplice reports an edit outside the document, off a UTF-8
	// rune boundary, or inserting invalid UTF-8.
	ErrBadSplice = errors.New("docstore: bad splice")
)

// Splice is one edit: delete DeleteLen bytes at byte offset Offset,
// then insert Insert there. A pure append is {Offset: len(text)}.
type Splice struct {
	Offset    int    `json:"offset"`
	DeleteLen int    `json:"delete_len"`
	Insert    string `json:"insert"`
}

// Doc is an immutable snapshot of a stored document.
type Doc struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	Text    string `json:"text"`
}

// Stats is a counter snapshot for /healthz and /metrics.
type Stats struct {
	Documents   int    `json:"documents"`
	Bytes       int64  `json:"bytes"`
	BudgetBytes int64  `json:"budget_bytes"`
	Puts        uint64 `json:"puts"`
	Splices     uint64 `json:"splices"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Evictions   uint64 `json:"evictions"`
}

type attachment struct {
	val  any
	size int
}

type entry struct {
	id          string
	text        string
	version     int64
	journalBase int64 // version the document had before journal[0]
	journal     []Splice
	attach      map[uint64]attachment
	elem        *list.Element
	bytes       int64 // accounted: text + attachments + fixed overhead
}

const (
	entryOverhead = 256
	maxJournal    = 32
	maxAttach     = 4
)

// Store is a byte-budgeted LRU document store, safe for concurrent
// use.
type Store struct {
	mu     sync.Mutex
	budget int64
	used   int64
	docs   map[string]*entry
	lru    *list.List // front = most recently used

	puts, splices, hits, misses, evictions uint64
}

// New returns a store bounded by budgetBytes (minimum one page's
// worth; a non-positive budget gets a 64 MiB default).
func New(budgetBytes int64) *Store {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 20
	}
	return &Store{budget: budgetBytes, docs: map[string]*entry{}, lru: list.New()}
}

// Budget returns the store's byte budget.
func (s *Store) Budget() int64 { return s.budget }

func (e *entry) snapshot() Doc { return Doc{ID: e.id, Version: e.version, Text: e.text} }

func (s *Store) touch(e *entry) { s.lru.MoveToFront(e.elem) }

// resize recomputes an entry's accounted bytes and evicts other
// documents (least recently used first) until the store fits its
// budget again.
func (s *Store) resize(e *entry) {
	nb := int64(len(e.text)) + entryOverhead
	for _, a := range e.attach {
		nb += int64(a.size)
	}
	s.used += nb - e.bytes
	e.bytes = nb
	for s.used > s.budget {
		back := s.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		if victim == e {
			// The hot document alone overflows; nothing else to evict.
			break
		}
		s.dropLocked(victim)
		s.evictions++
	}
}

func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.docs, e.id)
	s.used -= e.bytes
}

// Put creates or fully replaces a document, bumping its version and
// discarding any splice journal and attachments (a replacement
// invalidates extraction state wholesale). It fails with ErrTooLarge
// when the text alone cannot fit the budget.
func (s *Store) Put(id, text string) (Doc, error) {
	if int64(len(text))+entryOverhead > s.budget {
		return Doc{}, fmt.Errorf("%w: %d bytes against a %d-byte budget", ErrTooLarge, len(text), s.budget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		e = &entry{id: id}
		e.elem = s.lru.PushFront(e)
		s.docs[id] = e
	} else {
		s.touch(e)
	}
	e.text = text
	e.version++
	e.journalBase = e.version
	e.journal = nil
	e.attach = nil
	s.puts++
	s.resize(e)
	return e.snapshot(), nil
}

// Get returns a snapshot of the document.
func (s *Store) Get(id string) (Doc, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		s.misses++
		return Doc{}, false
	}
	s.hits++
	s.touch(e)
	return e.snapshot(), true
}

// Delete removes the document, reporting whether it existed.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		return false
	}
	s.dropLocked(e)
	return true
}

func byteBoundaryOK(t string, off int) bool {
	return off == len(t) || utf8.RuneStart(t[off])
}

// ApplySplice validates and applies one edit, bumps the version, and
// appends the edit to the document's journal (truncating the journal's
// reach when it exceeds its bound). Unknown ids return ErrNotFound;
// malformed edits return ErrBadSplice without changing anything.
func (s *Store) ApplySplice(id string, sp Splice) (Doc, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		s.misses++
		return Doc{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	t := e.text
	if sp.Offset < 0 || sp.DeleteLen < 0 || sp.Offset > len(t) || sp.Offset+sp.DeleteLen > len(t) {
		return Doc{}, fmt.Errorf("%w: range [%d,+%d) outside the %d-byte document", ErrBadSplice, sp.Offset, sp.DeleteLen, len(t))
	}
	if !byteBoundaryOK(t, sp.Offset) || !byteBoundaryOK(t, sp.Offset+sp.DeleteLen) {
		return Doc{}, fmt.Errorf("%w: offsets must fall on UTF-8 rune boundaries", ErrBadSplice)
	}
	if !utf8.ValidString(sp.Insert) {
		return Doc{}, fmt.Errorf("%w: insert is not valid UTF-8", ErrBadSplice)
	}
	nt := int64(len(t)-sp.DeleteLen+len(sp.Insert)) + entryOverhead
	if nt > s.budget {
		return Doc{}, fmt.Errorf("%w: splice grows the document past the %d-byte budget", ErrTooLarge, s.budget)
	}
	e.text = t[:sp.Offset] + sp.Insert + t[sp.Offset+sp.DeleteLen:]
	e.version++
	e.journal = append(e.journal, sp)
	if len(e.journal) > maxJournal {
		drop := len(e.journal) - maxJournal
		e.journal = append(e.journal[:0], e.journal[drop:]...)
		e.journalBase += int64(drop)
	}
	s.splices++
	s.touch(e)
	s.resize(e)
	return e.snapshot(), nil
}

// SplicesSince returns the edits that carry a reader at version v to
// the document's current version, oldest first. The second result is
// false when the journal no longer reaches back to v (or the id is
// unknown): the reader must rebuild from the full text instead.
func (s *Store) SplicesSince(id string, v int64) ([]Splice, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok || v < e.journalBase {
		return nil, false
	}
	if v >= e.version {
		return nil, true
	}
	out := make([]Splice, e.version-v)
	copy(out, e.journal[v-e.journalBase:])
	return out, true
}

// Attach parks an opaque value (the service's incremental extraction
// session) on the document under a fingerprint key, accounting size
// bytes against the store budget. At most a handful of attachments
// are kept per document; when full, an arbitrary one is dropped.
// Attaching to an unknown id is a no-op returning false.
func (s *Store) Attach(id string, key uint64, val any, size int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		return false
	}
	if e.attach == nil {
		e.attach = make(map[uint64]attachment, maxAttach)
	}
	if _, exists := e.attach[key]; !exists && len(e.attach) >= maxAttach {
		for k := range e.attach {
			delete(e.attach, k)
			break
		}
	}
	e.attach[key] = attachment{val: val, size: size}
	s.touch(e)
	s.resize(e)
	return true
}

// Attachment returns the value attached under key, if any.
func (s *Store) Attachment(id string, key uint64) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.docs[id]
	if !ok {
		return nil, false
	}
	a, ok := e.attach[key]
	if !ok {
		return nil, false
	}
	s.touch(e)
	return a.val, true
}

// Stats returns a counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Documents:   len(s.docs),
		Bytes:       s.used,
		BudgetBytes: s.budget,
		Puts:        s.puts,
		Splices:     s.splices,
		Hits:        s.hits,
		Misses:      s.misses,
		Evictions:   s.evictions,
	}
}
