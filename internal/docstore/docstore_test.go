package docstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestPutGetDelete(t *testing.T) {
	s := New(1 << 20)
	d, err := s.Put("a", "hello")
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if d.ID != "a" || d.Version != 1 || d.Text != "hello" {
		t.Fatalf("put snapshot: %+v", d)
	}
	got, ok := s.Get("a")
	if !ok || got != d {
		t.Fatalf("get: %+v ok=%v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("get of unknown id succeeded")
	}
	d2, err := s.Put("a", "replaced")
	if err != nil {
		t.Fatalf("replace: %v", err)
	}
	if d2.Version != 2 || d2.Text != "replaced" {
		t.Fatalf("replace snapshot: %+v", d2)
	}
	if !s.Delete("a") {
		t.Fatal("delete reported missing")
	}
	if s.Delete("a") {
		t.Fatal("double delete succeeded")
	}
	st := s.Stats()
	if st.Documents != 0 || st.Bytes != 0 {
		t.Fatalf("stats after delete: %+v", st)
	}
	if st.Puts != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestPutTooLarge(t *testing.T) {
	s := New(1024)
	if _, err := s.Put("big", strings.Repeat("x", 2048)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized put: %v", err)
	}
}

func TestSplice(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Put("d", "hello world"); err != nil {
		t.Fatalf("put: %v", err)
	}
	cases := []struct {
		sp   Splice
		want string
	}{
		{Splice{Offset: 5, DeleteLen: 6, Insert: ", doc"}, "hello, doc"},
		{Splice{Offset: 0, DeleteLen: 1, Insert: "H"}, "Hello, doc"},
		{Splice{Offset: 10, DeleteLen: 0, Insert: "!"}, "Hello, doc!"}, // pure append
		{Splice{Offset: 5, DeleteLen: 5, Insert: ""}, "Hello!"},        // delete-only
	}
	for i, tc := range cases {
		d, err := s.ApplySplice("d", tc.sp)
		if err != nil {
			t.Fatalf("splice %d: %v", i, err)
		}
		if d.Text != tc.want {
			t.Fatalf("splice %d: got %q want %q", i, d.Text, tc.want)
		}
		if d.Version != int64(i+2) {
			t.Fatalf("splice %d: version %d", i, d.Version)
		}
	}
}

func TestSpliceErrors(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Put("d", "héllo"); err != nil { // é is two bytes at offsets 1-2
		t.Fatalf("put: %v", err)
	}
	if _, err := s.ApplySplice("nope", Splice{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	for name, sp := range map[string]Splice{
		"offset-past-eof": {Offset: 7},
		"delete-past-eof": {Offset: 4, DeleteLen: 5},
		"negative-offset": {Offset: -1},
		"negative-delete": {DeleteLen: -1},
		"mid-rune-offset": {Offset: 2},
		"mid-rune-end":    {Offset: 1, DeleteLen: 1},
		"bad-utf8-insert": {Offset: 0, Insert: "\xff\xfe"},
	} {
		if _, err := s.ApplySplice("d", sp); !errors.Is(err, ErrBadSplice) {
			t.Fatalf("%s: got %v, want ErrBadSplice", name, err)
		}
	}
	if d, _ := s.Get("d"); d.Text != "héllo" || d.Version != 1 {
		t.Fatalf("rejected splices disturbed the document: %+v", d)
	}
	if _, err := s.ApplySplice("d", Splice{Offset: 0, DeleteLen: 3}); err != nil {
		t.Fatalf("rune-boundary delete of é: %v", err)
	}
}

func TestSpliceBudget(t *testing.T) {
	s := New(1024)
	if _, err := s.Put("d", strings.Repeat("x", 512)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if _, err := s.ApplySplice("d", Splice{Offset: 0, Insert: strings.Repeat("y", 1024)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over-budget splice: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(4 * (512 + entryOverhead))
	for i := 0; i < 4; i++ {
		if _, err := s.Put(fmt.Sprintf("d%d", i), strings.Repeat("x", 512)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	s.Get("d0") // refresh d0 so d1 is the LRU victim
	if _, err := s.Put("d4", strings.Repeat("x", 512)); err != nil {
		t.Fatalf("put d4: %v", err)
	}
	if _, ok := s.Get("d1"); ok {
		t.Fatal("LRU victim d1 survived")
	}
	for _, id := range []string{"d0", "d2", "d3", "d4"} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("%s was evicted; want only d1 gone", id)
		}
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions: %+v", st)
	}
}

func TestJournalAndSplicesSince(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Put("d", "base"); err != nil {
		t.Fatalf("put: %v", err)
	}
	var applied []Splice
	for i := 0; i < 5; i++ {
		sp := Splice{Offset: 0, Insert: fmt.Sprintf("%d", i)}
		applied = append(applied, sp)
		if _, err := s.ApplySplice("d", sp); err != nil {
			t.Fatalf("splice %d: %v", i, err)
		}
	}
	// Catch up from version 3: expect the last 3 splices.
	got, ok := s.SplicesSince("d", 3)
	if !ok || len(got) != 3 {
		t.Fatalf("SplicesSince(3): %v ok=%v", got, ok)
	}
	for i, sp := range got {
		if sp != applied[i+2] {
			t.Fatalf("SplicesSince(3)[%d] = %+v, want %+v", i, sp, applied[i+2])
		}
	}
	if got, ok := s.SplicesSince("d", 6); !ok || len(got) != 0 {
		t.Fatalf("SplicesSince(current): %v ok=%v", got, ok)
	}
	if _, ok := s.SplicesSince("missing", 1); ok {
		t.Fatal("SplicesSince on unknown id succeeded")
	}
	// Replacing the document resets the journal: version 6's journal no
	// longer reaches back to pre-replace versions.
	if _, err := s.Put("d", "fresh"); err != nil {
		t.Fatalf("replace: %v", err)
	}
	if _, ok := s.SplicesSince("d", 3); ok {
		t.Fatal("journal survived a full replace")
	}
}

func TestJournalBound(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Put("d", ""); err != nil {
		t.Fatalf("put: %v", err)
	}
	for i := 0; i < maxJournal+10; i++ {
		if _, err := s.ApplySplice("d", Splice{Insert: "x"}); err != nil {
			t.Fatalf("splice %d: %v", i, err)
		}
	}
	if _, ok := s.SplicesSince("d", 1); ok {
		t.Fatal("journal reached back past its bound")
	}
	d, _ := s.Get("d")
	if got, ok := s.SplicesSince("d", d.Version-maxJournal); !ok || len(got) != maxJournal {
		t.Fatalf("full-journal catch-up: %d ok=%v", len(got), ok)
	}
}

func TestAttachments(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Put("d", "text"); err != nil {
		t.Fatalf("put: %v", err)
	}
	if s.Attach("missing", 1, "v", 8) {
		t.Fatal("attach to unknown id succeeded")
	}
	if !s.Attach("d", 42, "session", 100) {
		t.Fatal("attach failed")
	}
	v, ok := s.Attachment("d", 42)
	if !ok || v != "session" {
		t.Fatalf("attachment: %v ok=%v", v, ok)
	}
	if _, ok := s.Attachment("d", 43); ok {
		t.Fatal("unknown key returned a value")
	}
	if _, ok := s.Attachment("missing", 42); ok {
		t.Fatal("unknown id returned a value")
	}
	// Cap: after maxAttach+2 distinct keys only maxAttach remain.
	for k := uint64(0); k < maxAttach+2; k++ {
		s.Attach("d", k, k, 8)
	}
	kept := 0
	for k := uint64(0); k < maxAttach+2; k++ {
		if _, ok := s.Attachment("d", k); ok {
			kept++
		}
	}
	if kept != maxAttach {
		t.Fatalf("kept %d attachments; cap is %d", kept, maxAttach)
	}
	// A full replace drops attachments.
	if _, err := s.Put("d", "new text"); err != nil {
		t.Fatalf("replace: %v", err)
	}
	for k := uint64(0); k < maxAttach+2; k++ {
		if _, ok := s.Attachment("d", k); ok {
			t.Fatalf("attachment %d survived a full replace", k)
		}
	}
}

func TestAttachmentBytesCountAgainstBudget(t *testing.T) {
	s := New(2*(64+entryOverhead) + 512)
	if _, err := s.Put("a", strings.Repeat("x", 64)); err != nil {
		t.Fatalf("put a: %v", err)
	}
	if _, err := s.Put("b", strings.Repeat("x", 64)); err != nil {
		t.Fatalf("put b: %v", err)
	}
	// Attaching a large value to b must evict a (the LRU victim).
	if !s.Attach("b", 1, "big", 600) {
		t.Fatal("attach failed")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("a survived an over-budget attachment on b")
	}
	if _, ok := s.Get("b"); !ok {
		t.Fatal("b itself was evicted")
	}
}

func TestDefaultBudget(t *testing.T) {
	if got := New(0).Budget(); got != 64<<20 {
		t.Fatalf("default budget: %d", got)
	}
	if got := New(123).Budget(); got != 123 {
		t.Fatalf("explicit budget: %d", got)
	}
}
