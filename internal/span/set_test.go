package span

import (
	"testing"
	"testing/quick"
)

func TestSetAddDedup(t *testing.T) {
	s := NewSet()
	m := Mapping{"x": {1, 2}}
	if !s.Add(m) {
		t.Fatal("first Add should insert")
	}
	if s.Add(Mapping{"x": {1, 2}}) {
		t.Fatal("duplicate Add should be ignored")
	}
	if s.Len() != 1 || !s.Contains(m) {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetEqualSubset(t *testing.T) {
	a := NewSet(Mapping{"x": {1, 2}}, Mapping{})
	b := NewSet(Mapping{}, Mapping{"x": {1, 2}})
	c := NewSet(Mapping{})
	if !a.Equal(b) {
		t.Error("order must not matter")
	}
	if !c.SubsetOf(a) || a.SubsetOf(c) {
		t.Error("subset broken")
	}
}

func TestSetUnionJoin(t *testing.T) {
	m1 := NewSet(Mapping{"x": {1, 4}}, Mapping{"x": {2, 4}})
	m2 := NewSet(Mapping{"y": {4, 7}}, Mapping{"x": {1, 4}, "y": {5, 6}})

	u := m1.Union(m2)
	if u.Len() != 4 {
		t.Fatalf("union Len = %d, want 4", u.Len())
	}

	j := m1.Join(m2)
	// Pairings: {x:1-4}⋈{y:4-7}, {x:2-4}⋈{y:4-7},
	// {x:1-4}⋈{x:1-4,y:5-6} (compatible), but {x:2-4} is incompatible
	// with {x:1-4,y:5-6}.
	want := NewSet(
		Mapping{"x": {1, 4}, "y": {4, 7}},
		Mapping{"x": {2, 4}, "y": {4, 7}},
		Mapping{"x": {1, 4}, "y": {5, 6}},
	)
	if !j.Equal(want) {
		t.Fatalf("Join = %v, want %v", j.Mappings(), want.Mappings())
	}
}

func TestSetJoinEmptyMappingIsIdentity(t *testing.T) {
	// {∅} is the neutral element of ⋈ (TRUE in the boolean reading).
	m := NewSet(Mapping{"x": {1, 2}}, Mapping{"y": {2, 3}})
	id := NewSet(Mapping{})
	if !m.Join(id).Equal(m) || !id.Join(m).Equal(m) {
		t.Error("join with {∅} must be identity")
	}
	// The empty set is the absorbing element (FALSE).
	empty := NewSet()
	if m.Join(empty).Len() != 0 {
		t.Error("join with ∅ must be empty")
	}
}

func TestSetProject(t *testing.T) {
	s := NewSet(
		Mapping{"x": {1, 2}, "y": {2, 3}},
		Mapping{"x": {1, 2}, "y": {3, 4}},
	)
	p := s.Project([]Var{"x"})
	if p.Len() != 1 || !p.Contains(Mapping{"x": {1, 2}}) {
		t.Fatalf("Project = %v", p.Mappings())
	}
}

func TestSetIsRelationOver(t *testing.T) {
	rel := NewSet(
		Mapping{"x": {1, 2}, "y": {2, 3}},
		Mapping{"x": {1, 3}, "y": {3, 3}},
	)
	if !rel.IsRelationOver([]Var{"x", "y"}) {
		t.Error("total uniform set should be a relation")
	}
	part := NewSet(Mapping{"x": {1, 2}}, Mapping{"x": {1, 2}, "y": {2, 3}})
	if part.IsRelationOver([]Var{"x", "y"}) {
		t.Error("partial mappings cannot form a relation over {x,y}")
	}
}

func TestTotalMappings(t *testing.T) {
	d := NewDocument("ab")
	// 2-length document has 6 spans; one variable -> 6 total mappings.
	tm := TotalMappings([]Var{"x"}, d)
	if tm.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tm.Len())
	}
	tm2 := TotalMappings([]Var{"x", "y"}, d)
	if tm2.Len() != 36 {
		t.Fatalf("Len = %d, want 36", tm2.Len())
	}
	for _, m := range tm2.Mappings() {
		if len(m) != 2 {
			t.Fatalf("non-total mapping %v", m)
		}
	}
}

func TestSetHierarchical(t *testing.T) {
	ok := NewSet(Mapping{"x": {1, 5}, "y": {2, 3}})
	bad := NewSet(Mapping{"x": {1, 4}, "y": {2, 6}})
	if !ok.Hierarchical() || bad.Hierarchical() {
		t.Error("Hierarchical set predicate broken")
	}
}

func TestJoinCommutative(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s1 := NewSet(
			Mapping{"x": {int(a%3) + 1, int(a%3) + 2}},
			Mapping{},
		)
		s2 := NewSet(
			Mapping{"x": {int(b%3) + 1, int(b%3) + 2}, "y": {int(c%3) + 1, int(c%3) + 1}},
		)
		return s1.Join(s2).Equal(s2.Join(s1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
