package span

import (
	"testing"
	"testing/quick"
)

func TestSpanBasics(t *testing.T) {
	d := NewDocument("Information extraction")
	if d.Len() != 22 {
		t.Fatalf("Len = %d, want 22", d.Len())
	}
	whole := d.Whole()
	if whole != (Span{1, 23}) {
		t.Fatalf("Whole = %v", whole)
	}
	p1 := Span{1, 12}
	if got := d.Content(p1); got != "Information" {
		t.Errorf("Content(p1) = %q, want %q", got, "Information")
	}
	p2 := Span{13, 23}
	if got := d.Content(p2); got != "extraction" {
		t.Errorf("Content(p2) = %q, want %q", got, "extraction")
	}
	if got := d.Content(Span{5, 5}); got != "" {
		t.Errorf("empty span content = %q, want empty", got)
	}
}

func TestSpanValid(t *testing.T) {
	cases := []struct {
		s    Span
		n    int
		want bool
	}{
		{Span{1, 1}, 0, true},
		{Span{0, 1}, 5, false},
		{Span{1, 7}, 5, false},
		{Span{3, 2}, 5, false},
		{Span{2, 6}, 5, true},
		{Span{6, 6}, 5, true},
	}
	for _, c := range cases {
		if got := c.s.Valid(c.n); got != c.want {
			t.Errorf("%v.Valid(%d) = %v, want %v", c.s, c.n, got, c.want)
		}
	}
}

func TestSpanConcat(t *testing.T) {
	s, ok := Span{1, 4}.Concat(Span{4, 7})
	if !ok || s != (Span{1, 7}) {
		t.Fatalf("Concat = %v, %v", s, ok)
	}
	if _, ok := (Span{1, 4}).Concat(Span{5, 7}); ok {
		t.Fatal("non-adjacent spans should not concatenate")
	}
	// Empty spans concatenate on both sides.
	s, ok = Span{3, 3}.Concat(Span{3, 8})
	if !ok || s != (Span{3, 8}) {
		t.Fatalf("empty-left Concat = %v, %v", s, ok)
	}
}

func TestSpanRelations(t *testing.T) {
	a, b := Span{1, 5}, Span{2, 4}
	if !b.ContainedIn(a) || a.ContainedIn(b) {
		t.Error("containment broken")
	}
	if !(Span{1, 3}).Disjoint(Span{3, 5}) {
		t.Error("adjacent spans should be disjoint")
	}
	if (Span{1, 4}).Disjoint(Span{3, 5}) {
		t.Error("overlapping spans reported disjoint")
	}
	if (Span{1, 3}).PointDisjoint(Span{3, 5}) {
		t.Error("spans sharing a boundary are not point-disjoint")
	}
	if !(Span{1, 3}).PointDisjoint(Span{4, 6}) {
		t.Error("separated spans should be point-disjoint")
	}
}

func TestDocumentSpansCount(t *testing.T) {
	d := NewDocument("abc")
	spans := d.Spans()
	if len(spans) != 10 { // (n+1)(n+2)/2 with n = 3
		t.Fatalf("got %d spans, want 10", len(spans))
	}
	seen := map[Span]bool{}
	for _, s := range spans {
		if !s.Valid(3) {
			t.Errorf("invalid span %v produced", s)
		}
		if seen[s] {
			t.Errorf("duplicate span %v", s)
		}
		seen[s] = true
	}
}

func TestUnicodeDocument(t *testing.T) {
	d := NewDocument("añ→b")
	if d.Len() != 4 {
		t.Fatalf("rune length = %d, want 4", d.Len())
	}
	if got := d.Content(Span{2, 4}); got != "ñ→" {
		t.Errorf("Content = %q", got)
	}
	if d.RuneAt(3) != '→' {
		t.Errorf("RuneAt(3) = %q", d.RuneAt(3))
	}
}

func TestMappingCompatibleUnion(t *testing.T) {
	m1 := Mapping{"x": {1, 4}}
	m2 := Mapping{"y": {4, 7}}
	m3 := Mapping{"x": {2, 4}}

	if !m1.Compatible(m2) {
		t.Error("disjoint-domain mappings must be compatible")
	}
	if m1.Compatible(m3) {
		t.Error("conflicting mappings reported compatible")
	}
	u, ok := m1.Union(m2)
	if !ok || !u.Equal(Mapping{"x": {1, 4}, "y": {4, 7}}) {
		t.Fatalf("Union = %v, %v", u, ok)
	}
	if _, ok := m1.Union(m3); ok {
		t.Error("incompatible union should fail")
	}
	// Union with overlapping but agreeing domains.
	m4 := Mapping{"x": {1, 4}, "z": {5, 6}}
	u, ok = m1.Union(m4)
	if !ok || len(u) != 2 {
		t.Fatalf("agreeing union = %v, %v", u, ok)
	}
}

func TestMappingDisjointDomain(t *testing.T) {
	m1 := Mapping{"x": {1, 2}}
	m2 := Mapping{"y": {1, 2}}
	m3 := Mapping{"x": {3, 4}}
	if !m1.DisjointDomain(m2) {
		t.Error("want disjoint")
	}
	if m1.DisjointDomain(m3) {
		t.Error("same variable must not be disjoint")
	}
}

func TestMappingHierarchical(t *testing.T) {
	if !(Mapping{"x": {1, 5}, "y": {2, 4}}).Hierarchical() {
		t.Error("nested mapping should be hierarchical")
	}
	if !(Mapping{"x": {1, 3}, "y": {3, 5}}).Hierarchical() {
		t.Error("disjoint mapping should be hierarchical")
	}
	if (Mapping{"x": {1, 4}, "y": {2, 6}}).Hierarchical() {
		t.Error("properly overlapping mapping must not be hierarchical")
	}
	if !(Mapping{}).Hierarchical() || !(Mapping{"x": {1, 2}}).Hierarchical() {
		t.Error("trivial mappings are hierarchical")
	}
}

func TestMappingPointDisjoint(t *testing.T) {
	if !(Mapping{"x": {1, 3}, "y": {4, 6}}).PointDisjoint() {
		t.Error("want point-disjoint")
	}
	if (Mapping{"x": {1, 3}, "y": {3, 6}}).PointDisjoint() {
		t.Error("shared endpoint is not point-disjoint")
	}
}

func TestMappingKeyString(t *testing.T) {
	m := Mapping{"b": {1, 2}, "a": {3, 4}}
	if m.Key() != "a=3,4;b=1,2" {
		t.Errorf("Key = %q", m.Key())
	}
	if m.String() != "{a -> (3, 4), b -> (1, 2)}" {
		t.Errorf("String = %q", m.String())
	}
	if (Mapping{}).String() != "{}" {
		t.Errorf("empty String = %q", Mapping{}.String())
	}
}

func TestMappingProject(t *testing.T) {
	m := Mapping{"x": {1, 2}, "y": {2, 3}, "z": {3, 4}}
	p := m.Project([]Var{"x", "z", "w"})
	if !p.Equal(Mapping{"x": {1, 2}, "z": {3, 4}}) {
		t.Errorf("Project = %v", p)
	}
}

func TestCompatibleSymmetric(t *testing.T) {
	// Property: compatibility is symmetric, and union (when defined)
	// is an extension of both arguments.
	f := func(a, b uint8, c, d uint8) bool {
		m1 := Mapping{"x": {int(a%5 + 1), int(a%5+1) + int(b%3)}}
		m2 := Mapping{"x": {int(c%5 + 1), int(c%5+1) + int(d%3)}}
		if m1.Compatible(m2) != m2.Compatible(m1) {
			return false
		}
		if u, ok := m1.Union(m2); ok {
			return u["x"] == m1["x"] && u["x"] == m2["x"]
		}
		return m1["x"] != m2["x"]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
