package span

import (
	"fmt"
	"sort"
	"strings"
)

// Extended is an extended mapping in the sense of Section 5.1: a
// partial function from variables to spans ∪ {⊥}. An entry with
// Bottom set records the obligation that the variable must remain
// unassigned in any completion; a missing entry leaves the variable
// free. Extended mappings are the inputs of the Eval decision problem
// that drives polynomial-delay enumeration.
type Extended map[Var]OptSpan

// OptSpan is either a concrete span or the symbol ⊥ ("never assign").
type OptSpan struct {
	Span   Span
	Bottom bool
}

// Assigned builds the optional value holding a concrete span.
func Assigned(s Span) OptSpan { return OptSpan{Span: s} }

// Unassigned is the optional value ⊥.
func Unassigned() OptSpan { return OptSpan{Bottom: true} }

// String renders the optional span, using the conventional ⊥ symbol.
func (o OptSpan) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Span.String()
}

// Copy returns an independent copy of the extended mapping.
func (e Extended) Copy() Extended {
	out := make(Extended, len(e))
	for v, o := range e {
		out[v] = o
	}
	return out
}

// With returns a copy of e with variable v set to o, the µ[x → s]
// operation of Algorithm 1.
func (e Extended) With(v Var, o OptSpan) Extended {
	out := e.Copy()
	out[v] = o
	return out
}

// Domain returns the constrained variables in sorted order.
func (e Extended) Domain() []Var {
	vars := make([]Var, 0, len(e))
	for v := range e {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// Mapping returns the ordinary mapping obtained by dropping every
// ⊥ entry, i.e. treating x with µ(x) = ⊥ as not in dom(µ).
func (e Extended) Mapping() Mapping {
	out := make(Mapping)
	for v, o := range e {
		if !o.Bottom {
			out[v] = o.Span
		}
	}
	return out
}

// FromMapping lifts an ordinary mapping µ to the extended mapping that
// assigns exactly dom(µ) and sends every variable of rest not in
// dom(µ) to ⊥. This is the translation used to reduce ModelCheck to
// Eval: the completion must assign exactly what µ assigns.
func FromMapping(m Mapping, rest []Var) Extended {
	out := make(Extended, len(m)+len(rest))
	for v, s := range m {
		out[v] = Assigned(s)
	}
	for _, v := range rest {
		if _, ok := m[v]; !ok {
			out[v] = Unassigned()
		}
	}
	return out
}

// ExtendedBy reports e ⊆ other pointwise on e's domain: every
// constraint of e is present, with identical value, in other.
func (e Extended) ExtendedBy(other Extended) bool {
	for v, o := range e {
		p, ok := other[v]
		if !ok || p != o {
			return false
		}
	}
	return true
}

// SatisfiedBy reports whether an ordinary mapping µ' respects every
// constraint of e: constrained-to-span variables have exactly that
// span and ⊥ variables are absent from dom(µ').
func (e Extended) SatisfiedBy(m Mapping) bool {
	for v, o := range e {
		s, assigned := m[v]
		if o.Bottom {
			if assigned {
				return false
			}
			continue
		}
		if !assigned || s != o.Span {
			return false
		}
	}
	return true
}

// String renders the extended mapping with ⊥ entries visible.
func (e Extended) String() string {
	vars := e.Domain()
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s -> %s", v, e[v])
	}
	b.WriteByte('}')
	return b.String()
}
