// Package span defines the basic objects of the document-spanner
// framework of Maturana, Riveros and Vrgoč (PODS 2018): documents,
// spans, and (partial) mappings from variables to spans.
//
// A document is a finite string over an alphabet Σ. A span of a
// document d is a pair (i, j) with 1 ≤ i ≤ j ≤ |d|+1 denoting the
// contiguous region of d between positions i and j-1; its content is
// the substring d[i..j-1] (possibly empty when i = j). Information
// extraction is modelled as producing partial mappings from a set of
// variables to spans, which is what allows incomplete information:
// a variable simply absent from a mapping's domain is "not extracted".
package span

import (
	"fmt"
	"sort"
	"strings"
)

// Var is an extraction variable. Variables are disjoint from the
// document alphabet and are compared by name.
type Var string

// Span is a region (Start, End) of a document, 1-based, with
// 1 ≤ Start ≤ End ≤ len(document)+1. The content of the span is the
// substring from position Start to End-1; a span with Start == End has
// empty content but still carries positional information, which is why
// spans rather than substrings are the unit of extraction.
type Span struct {
	Start int
	End   int
}

// Sp is a shorthand constructor for Span{Start: start, End: end},
// mirroring the paper's (i, j) notation.
func Sp(start, end int) Span { return Span{Start: start, End: end} }

// String renders the span in the paper's (i, j) notation.
func (s Span) String() string { return fmt.Sprintf("(%d, %d)", s.Start, s.End) }

// Len returns the number of symbols covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// IsEmpty reports whether the span has empty content (Start == End).
func (s Span) IsEmpty() bool { return s.Start == s.End }

// Valid reports whether the span is well formed for a document of
// length n, i.e. 1 ≤ Start ≤ End ≤ n+1.
func (s Span) Valid(n int) bool {
	return 1 <= s.Start && s.Start <= s.End && s.End <= n+1
}

// ContainedIn reports whether s lies inside t (t covers s).
func (s Span) ContainedIn(t Span) bool {
	return t.Start <= s.Start && s.End <= t.End
}

// Disjoint reports whether s and t share no positions. Adjacent spans
// (s.End == t.Start) are disjoint: they overlap only at a boundary.
func (s Span) Disjoint(t Span) bool {
	return s.End <= t.Start || t.End <= s.Start
}

// PointDisjoint reports whether the endpoint sets {Start, End} of the
// two spans are disjoint, the stronger notion used for the tractable
// containment fragment of Theorem 6.7.
func (s Span) PointDisjoint(t Span) bool {
	return s.Start != t.Start && s.Start != t.End &&
		s.End != t.Start && s.End != t.End
}

// Concat returns the concatenation s·t, defined when s.End == t.Start.
// The second result is false when the spans are not adjacent.
func (s Span) Concat(t Span) (Span, bool) {
	if s.End != t.Start {
		return Span{}, false
	}
	return Span{Start: s.Start, End: t.End}, true
}

// Document is a string over Σ together with its rune decomposition.
// Positions (and therefore spans) are measured in runes, so multi-byte
// UTF-8 documents behave like the paper's abstract alphabet strings.
type Document struct {
	text  string
	runes []rune
}

// NewDocument builds a document from text.
func NewDocument(text string) *Document {
	return &Document{text: text, runes: []rune(text)}
}

// Len returns |d|, the number of symbols in the document.
func (d *Document) Len() int { return len(d.runes) }

// Text returns the underlying string.
func (d *Document) Text() string { return d.text }

// Runes returns the rune decomposition of the document. The returned
// slice is shared and must not be modified.
func (d *Document) Runes() []rune { return d.runes }

// RuneAt returns the symbol at 1-based position i (1 ≤ i ≤ |d|).
func (d *Document) RuneAt(i int) rune { return d.runes[i-1] }

// ASCIIText returns the document text when every symbol is ASCII —
// the precondition for byte-indexed scanning (memchr-style candidate
// jumps), where byte offsets and rune positions coincide — and ""
// otherwise. The check is a length comparison: any multi-byte rune
// makes the byte length exceed the rune count.
func (d *Document) ASCIIText() string {
	if len(d.text) == len(d.runes) {
		return d.text
	}
	return ""
}

// Splice returns the document obtained by replacing the del symbols
// starting at 0-based rune offset off with ins. It panics when the
// range is out of bounds, since a malformed splice indicates a bug in
// the caller rather than bad input (the service layer validates byte
// offsets before they reach this level). When both the document and
// the insertion are pure ASCII the text splices by substring
// concatenation, so the dominant cost is two memcpys rather than a
// UTF-8 re-encode of the whole document.
func (d *Document) Splice(off, del int, ins string) *Document {
	if off < 0 || del < 0 || off+del > len(d.runes) {
		panic(fmt.Sprintf("splice [%d,+%d) invalid for document of length %d", off, del, len(d.runes)))
	}
	insRunes := []rune(ins)
	nr := make([]rune, 0, len(d.runes)+len(insRunes)-del)
	nr = append(nr, d.runes[:off]...)
	nr = append(nr, insRunes...)
	nr = append(nr, d.runes[off+del:]...)
	if len(d.text) == len(d.runes) && len(ins) == len(insRunes) {
		return &Document{text: d.text[:off] + ins + d.text[off+del:], runes: nr}
	}
	return &Document{text: string(nr), runes: nr}
}

// Whole returns the span (1, |d|+1) covering the entire document.
func (d *Document) Whole() Span { return Span{Start: 1, End: d.Len() + 1} }

// Content returns the content of s, the substring of d from position
// s.Start to s.End-1. It panics if s is not a valid span of d, since a
// malformed span indicates a bug in the caller rather than bad input.
func (d *Document) Content(s Span) string {
	if !s.Valid(d.Len()) {
		panic(fmt.Sprintf("span %v invalid for document of length %d", s, d.Len()))
	}
	return string(d.runes[s.Start-1 : s.End-1])
}

// Spans returns all spans of d in lexicographic (Start, End) order.
// There are (n+1)(n+2)/2 of them for a document of length n.
func (d *Document) Spans() []Span {
	n := d.Len()
	out := make([]Span, 0, (n+1)*(n+2)/2)
	for i := 1; i <= n+1; i++ {
		for j := i; j <= n+1; j++ {
			out = append(out, Span{Start: i, End: j})
		}
	}
	return out
}

// Mapping is a partial function from variables to spans. A variable
// not present in the map is undefined, which is how the framework
// represents missing or optional information.
type Mapping map[Var]Span

// Domain returns dom(µ), sorted by variable name for determinism.
func (m Mapping) Domain() []Var {
	vars := make([]Var, 0, len(m))
	for v := range m {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}

// Copy returns an independent copy of the mapping.
func (m Mapping) Copy() Mapping {
	out := make(Mapping, len(m))
	for v, s := range m {
		out[v] = s
	}
	return out
}

// Equal reports whether two mappings are identical as partial
// functions: same domain, same values.
func (m Mapping) Equal(other Mapping) bool {
	if len(m) != len(other) {
		return false
	}
	for v, s := range m {
		if t, ok := other[v]; !ok || t != s {
			return false
		}
	}
	return true
}

// Compatible reports µ1 ~ µ2: the mappings agree on every variable in
// the intersection of their domains.
func (m Mapping) Compatible(other Mapping) bool {
	small, large := m, other
	if len(large) < len(small) {
		small, large = large, small
	}
	for v, s := range small {
		if t, ok := large[v]; ok && t != s {
			return false
		}
	}
	return true
}

// Union returns µ1 ∪ µ2, the extension of m with the values of other
// on the variables where m is undefined. The second result is false
// when the mappings are incompatible, in which case no union exists.
func (m Mapping) Union(other Mapping) (Mapping, bool) {
	if !m.Compatible(other) {
		return nil, false
	}
	out := m.Copy()
	for v, s := range other {
		out[v] = s
	}
	return out, true
}

// DisjointDomain reports whether dom(µ1) ∩ dom(µ2) = ∅, the condition
// required when joining the two sides of a concatenation in Table 2.
func (m Mapping) DisjointDomain(other Mapping) bool {
	small, large := m, other
	if len(large) < len(small) {
		small, large = large, small
	}
	for v := range small {
		if _, ok := large[v]; ok {
			return false
		}
	}
	return true
}

// Hierarchical reports whether for every pair of assigned variables
// the two spans are nested or disjoint. RGX and VAstk can only define
// hierarchical mappings (Section 3.2).
func (m Mapping) Hierarchical() bool {
	vars := m.Domain()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			s, t := m[vars[i]], m[vars[j]]
			if !s.ContainedIn(t) && !t.ContainedIn(s) && !s.Disjoint(t) {
				return false
			}
		}
	}
	return true
}

// PointDisjoint reports whether the spans assigned to distinct
// variables share no endpoints (Section 6, Theorem 6.7).
func (m Mapping) PointDisjoint() bool {
	vars := m.Domain()
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if !m[vars[i]].PointDisjoint(m[vars[j]]) {
				return false
			}
		}
	}
	return true
}

// Key returns a canonical string form of the mapping, usable as a map
// key for deduplication. Variables appear in sorted order.
func (m Mapping) Key() string {
	vars := m.Domain()
	var b strings.Builder
	for i, v := range vars {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%d,%d", v, m[v].Start, m[v].End)
	}
	return b.String()
}

// String renders the mapping as {x -> (i, j), ...} with variables in
// sorted order; the empty mapping renders as {}.
func (m Mapping) String() string {
	vars := m.Domain()
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s -> %s", v, m[v])
	}
	b.WriteByte('}')
	return b.String()
}

// Project restricts the mapping to the given variables, dropping all
// other assignments. Variables absent from m are simply not included.
func (m Mapping) Project(vars []Var) Mapping {
	out := make(Mapping)
	for _, v := range vars {
		if s, ok := m[v]; ok {
			out[v] = s
		}
	}
	return out
}
