package span

import "sort"

// Set is a deduplicated set of mappings, the output type of every
// spanner in the mapping-based semantics. Internally it is keyed by
// the canonical Mapping.Key form.
type Set struct {
	byKey map[string]Mapping
}

// NewSet builds a set containing the given mappings.
func NewSet(ms ...Mapping) *Set {
	s := &Set{byKey: make(map[string]Mapping, len(ms))}
	for _, m := range ms {
		s.Add(m)
	}
	return s
}

// Add inserts a mapping, ignoring duplicates. It reports whether the
// mapping was newly inserted.
func (s *Set) Add(m Mapping) bool {
	k := m.Key()
	if _, ok := s.byKey[k]; ok {
		return false
	}
	s.byKey[k] = m
	return true
}

// Contains reports whether an identical mapping is in the set.
func (s *Set) Contains(m Mapping) bool {
	_, ok := s.byKey[m.Key()]
	return ok
}

// Len returns the number of distinct mappings in the set.
func (s *Set) Len() int { return len(s.byKey) }

// Mappings returns the contents in canonical (key-sorted) order.
func (s *Set) Mappings() []Mapping {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Mapping, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// Equal reports whether two sets contain exactly the same mappings.
func (s *Set) Equal(other *Set) bool {
	if s.Len() != other.Len() {
		return false
	}
	for k := range s.byKey {
		if _, ok := other.byKey[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every mapping of s is in other.
func (s *Set) SubsetOf(other *Set) bool {
	for k := range s.byKey {
		if _, ok := other.byKey[k]; !ok {
			return false
		}
	}
	return true
}

// Union returns a new set with the mappings of both sets.
func (s *Set) Union(other *Set) *Set {
	out := NewSet()
	for _, m := range s.byKey {
		out.Add(m)
	}
	for _, m := range other.byKey {
		out.Add(m)
	}
	return out
}

// Join returns M1 ⋈ M2 = { µ1 ∪ µ2 | µ1 ∈ M1, µ2 ∈ M2, µ1 ~ µ2 },
// the join of two sets of mappings from Section 2.
func (s *Set) Join(other *Set) *Set {
	out := NewSet()
	for _, m1 := range s.byKey {
		for _, m2 := range other.byKey {
			if u, ok := m1.Union(m2); ok {
				out.Add(u)
			}
		}
	}
	return out
}

// Project returns { µ|vars : µ ∈ s }, the algebra's projection.
func (s *Set) Project(vars []Var) *Set {
	out := NewSet()
	for _, m := range s.byKey {
		out.Add(m.Project(vars))
	}
	return out
}

// Hierarchical reports whether every mapping in the set is
// hierarchical (Section 2).
func (s *Set) Hierarchical() bool {
	for _, m := range s.byKey {
		if !m.Hierarchical() {
			return false
		}
	}
	return true
}

// IsRelationOver reports whether the set is a relation over the given
// variables: every mapping is total on exactly that variable set. This
// is the property the relation-based semantics of earlier work forces.
func (s *Set) IsRelationOver(vars []Var) bool {
	for _, m := range s.byKey {
		if len(m) != len(vars) {
			return false
		}
		for _, v := range vars {
			if _, ok := m[v]; !ok {
				return false
			}
		}
	}
	return true
}

// TotalMappings returns the set of all total functions from vars to
// spans of a document of length n. It is used to recover the
// relation-based semantics of span regular expressions (Theorem 4.2),
// where unmatched variables take arbitrary values. The size is
// ((n+1)(n+2)/2)^|vars|, so this is only sensible for small inputs.
func TotalMappings(vars []Var, d *Document) *Set {
	spans := d.Spans()
	out := NewSet()
	var rec func(i int, cur Mapping)
	rec = func(i int, cur Mapping) {
		if i == len(vars) {
			out.Add(cur.Copy())
			return
		}
		for _, s := range spans {
			cur[vars[i]] = s
			rec(i+1, cur)
		}
		delete(cur, vars[i])
	}
	sorted := append([]Var(nil), vars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rec(0, make(Mapping))
	return out
}
