package span

import "testing"

func TestExtendedSatisfiedBy(t *testing.T) {
	e := Extended{
		"x": Assigned(Span{1, 3}),
		"y": Unassigned(),
	}
	if !e.SatisfiedBy(Mapping{"x": {1, 3}}) {
		t.Error("exact match with y absent should satisfy")
	}
	if !e.SatisfiedBy(Mapping{"x": {1, 3}, "z": {4, 5}}) {
		t.Error("unconstrained extra variables are allowed")
	}
	if e.SatisfiedBy(Mapping{"x": {1, 3}, "y": {4, 5}}) {
		t.Error("⊥ variable must stay unassigned")
	}
	if e.SatisfiedBy(Mapping{"x": {1, 4}}) {
		t.Error("wrong span must not satisfy")
	}
	if e.SatisfiedBy(Mapping{}) {
		t.Error("missing constrained variable must not satisfy")
	}
}

func TestExtendedMappingRoundTrip(t *testing.T) {
	m := Mapping{"x": {1, 3}}
	e := FromMapping(m, []Var{"x", "y", "z"})
	if len(e) != 3 {
		t.Fatalf("FromMapping size = %d", len(e))
	}
	if !e["y"].Bottom || !e["z"].Bottom {
		t.Error("rest variables must be ⊥")
	}
	back := e.Mapping()
	if !back.Equal(m) {
		t.Errorf("round trip = %v", back)
	}
	// A mapping satisfies its own FromMapping lift, and the lift is
	// exactly the ModelCheck constraint: nothing else satisfies it on
	// the declared variables.
	if !e.SatisfiedBy(m) {
		t.Error("mapping must satisfy its own lift")
	}
	if e.SatisfiedBy(Mapping{"x": {1, 3}, "y": {1, 1}}) {
		t.Error("lift must forbid assigning the rest")
	}
}

func TestExtendedWithAndExtendedBy(t *testing.T) {
	e := Extended{}
	e2 := e.With("x", Assigned(Span{2, 2}))
	if len(e) != 0 {
		t.Error("With must not mutate the receiver")
	}
	if !e.ExtendedBy(e2) {
		t.Error("empty extends everything")
	}
	if e2.ExtendedBy(e) {
		t.Error("constraint lost")
	}
	e3 := e2.With("x", Unassigned())
	if e2.ExtendedBy(e3) {
		t.Error("conflicting values are not extensions")
	}
}

func TestExtendedString(t *testing.T) {
	e := Extended{"b": Unassigned(), "a": Assigned(Span{1, 2})}
	if e.String() != "{a -> (1, 2), b -> ⊥}" {
		t.Errorf("String = %q", e.String())
	}
}
