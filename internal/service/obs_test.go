package service

import (
	"context"
	"strings"
	"sync"
	"testing"

	"spanners/internal/obs"
)

// TestStreamRecordsDelayPerMapping is the satellite stream assertion:
// every emitted mapping of a streaming extraction must land one sample
// in the emission-delay histogram, and — when the request carries a
// trace — in the trace's per-request digest.
func TestStreamRecordsDelayPerMapping(t *testing.T) {
	svc := New(Config{})
	o := svc.Observability()
	if o == nil {
		t.Fatal("observability disabled by default")
	}

	trace := o.Tracer.Begin("stream-1")
	ctx := obs.WithTrace(context.Background(), trace)
	n := 0
	if err := svc.ExtractStream(ctx, Query{Expr: sellerExpr}, sellerDoc, func(Result) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("stream produced no mappings")
	}
	if got := o.EmissionDelay.Snapshot().Count; got != uint64(n) {
		t.Fatalf("emission-delay samples = %d, mappings = %d", got, n)
	}

	snap := trace.Snapshot()
	if snap.Delays == nil || snap.Delays.Count != uint64(n) {
		t.Fatalf("trace delay digest = %+v, want %d samples", snap.Delays, n)
	}
	names := map[string]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{obs.StageCompile, obs.StageCoReachSweep, obs.StageEnumerate, obs.StageStream} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}

	// A second identical stream resolves from cache: the compile span
	// becomes a cache-lookup.
	trace2 := o.Tracer.Begin("stream-2")
	if err := svc.ExtractStream(obs.WithTrace(context.Background(), trace2),
		Query{Expr: sellerExpr}, sellerDoc, func(Result) bool { return true }); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range trace2.Snapshot().Spans {
		if sp.Name == obs.StageCacheLookup {
			found = true
		}
		if sp.Name == obs.StageCompile {
			t.Fatalf("second stream recompiled: %+v", trace2.Snapshot().Spans)
		}
	}
	if !found {
		t.Fatal("second stream recorded no cache-lookup span")
	}
}

func TestBatchRecordsStagesNotDelays(t *testing.T) {
	svc := New(Config{})
	o := svc.Observability()
	trace := o.Tracer.Begin("batch-1")
	ctx := obs.WithTrace(context.Background(), trace)
	docs := []string{sellerDoc, sellerDoc, sellerDoc}
	if _, err := svc.ExtractBatch(ctx, Query{Expr: sellerExpr}, docs); err != nil {
		t.Fatal(err)
	}
	// The batch path feeds stage histograms but not the stream-delay
	// histogram (that metric is stream-only by contract).
	if got := o.EmissionDelay.Snapshot().Count; got != 0 {
		t.Fatalf("batch recorded %d emission delays", got)
	}
	var enumSamples uint64
	for _, ls := range o.StageDur.Snapshots() {
		if ls.Value == obs.StageEnumerate {
			enumSamples = ls.Snapshot.Count
		}
	}
	if enumSamples != uint64(len(docs)) {
		t.Fatalf("enumerate stage samples = %d, want %d (one per doc)", enumSamples, len(docs))
	}
	snap := trace.Snapshot()
	var batchSpan bool
	for _, sp := range snap.Spans {
		if sp.Name == obs.StageBatch && sp.Detail == "3 docs" {
			batchSpan = true
		}
		if sp.Name == obs.StageEnumerate {
			t.Fatalf("per-document span leaked into batch trace: %+v", snap.Spans)
		}
	}
	if !batchSpan {
		t.Fatalf("no batch span with doc count: %+v", snap.Spans)
	}
}

func TestAlgebraOpTimings(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("ya", "y{a}"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("zb", "z{b}"); err != nil {
		t.Fatal(err)
	}
	o := svc.Observability()
	trace := o.Tracer.Begin("alg-1")
	ctx := obs.WithTrace(context.Background(), trace)
	if _, err := svc.Extract(ctx, Query{Algebra: "union(ya, zb)"}, "ab"); err != nil {
		t.Fatal(err)
	}
	ops := map[string]uint64{}
	for _, ls := range o.AlgebraOpDur.Snapshots() {
		ops[ls.Value] = ls.Snapshot.Count
	}
	if ops["leaf"] != 2 || ops["union"] != 1 {
		t.Fatalf("op samples = %v, want 2 leaves + 1 union", ops)
	}
	var unionSpan bool
	for _, sp := range trace.Snapshot().Spans {
		if sp.Name == obs.AlgebraStage("union") {
			unionSpan = true
		}
	}
	if !unionSpan {
		t.Fatalf("no algebra:union span on trace: %+v", trace.Snapshot().Spans)
	}

	// Cached composition: no new op samples.
	if _, err := svc.Extract(context.Background(), Query{Algebra: "union(ya, zb)"}, "ab"); err != nil {
		t.Fatal(err)
	}
	for _, ls := range o.AlgebraOpDur.Snapshots() {
		if ls.Snapshot.Count != ops[ls.Value] {
			t.Fatalf("cached algebra query re-recorded op %s", ls.Value)
		}
	}
}

func TestObservabilityDisabled(t *testing.T) {
	svc := New(Config{DisableObservability: true})
	if svc.Observability() != nil {
		t.Fatal("observability present despite DisableObservability")
	}
	// Extraction still works, through the unobserved path.
	res, err := svc.Extract(context.Background(), Query{Expr: sellerExpr}, sellerDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results on unobserved path")
	}
	var b strings.Builder
	if err := svc.Observability().WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil observability wrote %q, err %v", b.String(), err)
	}
}

func TestPrometheusExposition(t *testing.T) {
	svc := New(Config{})
	if err := svc.ExtractStream(context.Background(), Query{Expr: sellerExpr}, sellerDoc,
		func(Result) bool { return true }); err != nil {
		t.Fatal(err)
	}
	svc.Observability().NoteDeadlineExpiry()
	var b strings.Builder
	if err := svc.Observability().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE spand_extract_duration_seconds histogram",
		`spand_extract_duration_seconds_bucket{stage="enumerate"`,
		"# TYPE spand_stream_emission_delay_seconds histogram",
		"spand_stream_emission_delay_seconds_count",
		"spand_deadline_expiries_total 1",
		`spand_cache_events_total{cache="spanner",event="miss"} 1`,
		"spand_mappings_emitted_total 2",
		`spand_spanners_compiled_total{engine="sequential"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestConcurrentObservedExtractions exercises the full observed path
// from parallel goroutines while snapshots/scrapes run — the -race
// check for the service-level instrumentation.
func TestConcurrentObservedExtractions(t *testing.T) {
	svc := New(Config{TraceRetention: 8})
	o := svc.Observability()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if err := o.WritePrometheus(&b); err != nil {
					panic(err)
				}
				o.Tracer.Last(8)
				svc.Stats()
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				trace := o.Tracer.Begin("")
				ctx := obs.WithTrace(context.Background(), trace)
				if w%2 == 0 {
					if err := svc.ExtractStream(ctx, Query{Expr: sellerExpr}, sellerDoc,
						func(Result) bool { return true }); err != nil {
						panic(err)
					}
				} else {
					if _, err := svc.ExtractBatch(ctx, Query{Expr: sellerExpr},
						[]string{sellerDoc, sellerDoc}); err != nil {
						panic(err)
					}
				}
				trace.Finish(0)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-scrapeDone
	if got := o.EmissionDelay.Snapshot().Count; got != 3*20*2 {
		t.Fatalf("emission-delay samples = %d, want %d", got, 3*20*2)
	}
}
