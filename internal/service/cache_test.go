package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUHitMissEviction(t *testing.T) {
	c := newLRU[int](2)
	compiles := 0
	get := func(key string) int {
		v, err := c.get(key, func() (int, error) { compiles++; return len(key), nil })
		if err != nil {
			t.Fatalf("get(%q): %v", key, err)
		}
		return v
	}

	get("a")
	get("bb")
	if got := get("a"); got != 1 {
		t.Fatalf("get(a) = %d, want 1", got)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Fatalf("stats after warm-up = %+v, want 1 hit, 2 misses, 0 evictions", st)
	}

	// "a" is now most recent; inserting a third key must evict "bb".
	get("ccc")
	if st := c.stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats after eviction = %+v, want 1 eviction, size 2", st)
	}
	get("a") // still cached
	get("bb")
	if compiles != 4 {
		t.Fatalf("compiles = %d, want 4 (a, bb, ccc, bb-recompiled)", compiles)
	}
}

func TestLRUErrorNotCached(t *testing.T) {
	c := newLRU[int](4)
	calls := 0
	fail := func() (int, error) { calls++; return 0, fmt.Errorf("boom %d", calls) }
	if _, err := c.get("k", fail); err == nil {
		t.Fatal("first get: want error")
	}
	if _, err := c.get("k", fail); err == nil || err.Error() != "boom 2" {
		t.Fatalf("second get: error = %v, want fresh boom 2", err)
	}
	if st := c.stats(); st.Size != 0 {
		t.Fatalf("failed compiles must not occupy capacity: size = %d", st.Size)
	}
}

// TestLRUConcurrent hammers a small cache from many goroutines over a
// larger key space, forcing eviction and re-compilation to race with
// lookups, and checks values stay correct and counters consistent.
func TestLRUConcurrent(t *testing.T) {
	const (
		capacity   = 8
		keys       = 32
		goroutines = 16
		iters      = 500
	)
	c := newLRU[int](capacity)
	var compiles atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (seed*31 + i*7) % keys
				key := fmt.Sprintf("key-%d", k)
				v, err := c.get(key, func() (int, error) {
					compiles.Add(1)
					return k * k, nil
				})
				if err != nil {
					errs <- err
					return
				}
				if v != k*k {
					errs <- fmt.Errorf("get(%s) = %d, want %d", key, v, k*k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.stats()
	if st.Size > capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, capacity)
	}
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("hits(%d)+misses(%d) != %d lookups", st.Hits, st.Misses, goroutines*iters)
	}
	if got := int64(st.Misses); got != compiles.Load() {
		t.Fatalf("misses = %d but compile ran %d times", got, compiles.Load())
	}
}

// TestLRUSharedCompile checks that concurrent requests for one cold
// key share a single compilation.
func TestLRUSharedCompile(t *testing.T) {
	c := newLRU[int](4)
	var compiles atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.get("hot", func() (int, error) {
				compiles.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("get = %d, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Fatalf("compile ran %d times for one key, want 1", n)
	}
}
