// Package service is the serving layer over the spanner engine: a
// thread-safe cache of compiled spanners and rules, a bounded worker
// pool for batch extraction, and a streaming front end over the
// polynomial-delay enumerator. It exists so that a long-lived process
// (cmd/spand) can amortize the expensive parse → decompose → VA-compile
// pipeline across many requests and treat extraction as a query
// workload rather than a one-shot call.
package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats is a point-in-time snapshot of one compile cache.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// lru is a thread-safe LRU cache from source expressions to compiled
// values. Compilation runs outside the cache lock, guarded by a
// per-entry sync.Once, so a burst of requests for the same expression
// compiles it exactly once while unrelated expressions compile
// concurrently. Failed compilations are removed so they neither
// occupy capacity nor pin the error forever.
type lru[V any] struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruEntry[V any] struct {
	key     string
	once    sync.Once
	compile func() (V, error)
	val     V
	err     error
}

// run executes the entry's compile exactly once. Every reader — hit
// or miss path — goes through run, so whichever goroutine wins the
// Once performs the real compilation; a bare once.Do(func(){}) on the
// hit path could otherwise consume the Once and poison the entry with
// a zero value.
func (e *lruEntry[V]) run() {
	e.val, e.err = e.compile()
	e.compile = nil
}

func newLRU[V any](capacity int) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// get returns the cached value for key, compiling it with compile on
// a miss. Concurrent callers for the same key share one compilation.
func (c *lru[V]) get(key string, compile func() (V, error)) (V, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*lruEntry[V])
		c.mu.Unlock()
		c.hits.Add(1)
		entry.once.Do(entry.run)
		if entry.err != nil {
			c.remove(key, el)
		}
		return entry.val, entry.err
	}
	entry := &lruEntry[V]{key: key, compile: compile}
	el := c.order.PushFront(entry)
	c.entries[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.misses.Add(1)

	entry.once.Do(entry.run)
	if entry.err != nil {
		c.remove(key, el)
	}
	return entry.val, entry.err
}

// put seeds the cache with an already-built value (a registry
// pre-warm, not request traffic), so it counts as neither hit nor
// miss. An existing entry for key is refreshed and kept.
func (c *lru[V]) put(key string, val V) {
	entry := &lruEntry[V]{key: key, val: val}
	entry.once.Do(func() {}) // consume the Once: val is final
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = entry
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(entry)
	c.entries[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
		c.evictions.Add(1)
	}
}

// remove drops the entry for key if it is still the one at el.
func (c *lru[V]) remove(key string, el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == el {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// stats returns a consistent-enough snapshot for monitoring.
func (c *lru[V]) stats() CacheStats {
	c.mu.Lock()
	size := c.order.Len()
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
		Capacity:  c.capacity,
	}
}
