package service

import (
	"context"
	"fmt"
	"sync"
	"unicode/utf8"

	"spanners"
	"spanners/internal/docstore"
)

// ErrDocumentNotFound is returned by the by-reference extraction paths
// when the document id is unknown (or was evicted by the byte budget).
var ErrDocumentNotFound = docstore.ErrNotFound

// Documents returns the service's document store — the backing of the
// /v1/documents API. Nil only when the service predates the store
// (never in practice; New always builds one).
func (s *Service) Documents() *docstore.Store { return s.docs }

// incSession is an incremental extraction session parked on a stored
// document, keyed by the compiled program's fingerprint. The mutex
// serializes catch-up and result encoding: the underlying session is
// single-writer, and Each borrows its mappings.
type incSession struct {
	mu      sync.Mutex
	sp      *spanners.Spanner
	inc     *spanners.Incremental
	version int64
}

// DocumentStats extends the store's counters with the incremental
// serving paths: hits served straight from an up-to-date session,
// replays that caught a session up through the splice journal,
// rebuilds that re-extracted from the full text to (re)seed a session,
// and full extractions by spanners that cannot maintain results
// incrementally.
type DocumentStats struct {
	Store               docstore.Stats `json:"store"`
	IncrementalHits     uint64         `json:"incremental_hits"`
	IncrementalReplays  uint64         `json:"incremental_replays"`
	IncrementalRebuilds uint64         `json:"incremental_rebuilds"`
	FullExtractions     uint64         `json:"full_extractions"`
}

func (s *Service) documentStats() DocumentStats {
	return DocumentStats{
		Store:               s.docs.Stats(),
		IncrementalHits:     s.incHits.Load(),
		IncrementalReplays:  s.incReplays.Load(),
		IncrementalRebuilds: s.incRebuilds.Load(),
		FullExtractions:     s.incFull.Load(),
	}
}

// ExtractDocument evaluates q over the stored document id. When the
// query resolves to a compiled sequential spanner, results come from
// an incremental session attached to the document: an unchanged
// document re-serves its cached result set, and a spliced one pays
// only the edit-neighbourhood resweep (journal replay) rather than a
// from-scratch extraction. Everything else falls back to plain
// extraction of the stored text.
func (s *Service) ExtractDocument(ctx context.Context, q Query, id string) ([]Result, error) {
	doc, ok := s.docs.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrDocumentNotFound, id)
	}
	c, err := s.CompileQueryCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	sess, fresh := s.sessionFor(c, doc)
	if sess == nil {
		s.incFull.Add(1)
		return c.extractOne(ctx, doc.Text, nil)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if err := s.catchUp(sess, doc, fresh); err != nil {
		// The journal or session failed us; extract the snapshot text.
		s.incFull.Add(1)
		return c.extractOne(ctx, doc.Text, nil)
	}
	s.docs.Attach(doc.ID, c.sp.ProgramFingerprint(), sess, sess.inc.MemoryBytes())

	// Encode under the session lock: Each borrows its mappings.
	d := sess.inc.Document()
	out := []Result{}
	n := 0
	sess.inc.Each(func(m spanners.Mapping) bool {
		s.emitted.Add(1)
		out = append(out, EncodeMapping(d, m))
		n++
		return c.limit <= 0 || n < c.limit
	})
	return out, nil
}

// sessionFor finds or creates the incremental session for the compiled
// query on doc (fresh reports a newly seeded session), or returns nil
// when the query cannot be served incrementally (rules, interpreted or
// non-sequential spanners).
func (s *Service) sessionFor(c *Compiled, doc docstore.Doc) (sess *incSession, fresh bool) {
	if c.sp == nil {
		return nil, false
	}
	fp := c.sp.ProgramFingerprint()
	if fp == 0 {
		return nil, false
	}
	if v, ok := s.docs.Attachment(doc.ID, fp); ok {
		if sess, ok := v.(*incSession); ok {
			return sess, false
		}
	}
	inc, ok := c.sp.Incremental(doc.Text)
	if !ok {
		return nil, false
	}
	s.incRebuilds.Add(1)
	sess = &incSession{sp: c.sp, inc: inc, version: doc.Version}
	s.docs.Attach(doc.ID, fp, sess, inc.MemoryBytes())
	return sess, true
}

// catchUp brings a session from its recorded version to doc's, by
// journal replay when the journal still reaches back that far and by
// a full rebuild otherwise. Callers hold sess.mu.
func (s *Service) catchUp(sess *incSession, doc docstore.Doc, fresh bool) error {
	if sess.version == doc.Version {
		if !fresh {
			s.incHits.Add(1)
		}
		return nil
	}
	splices, ok := s.docs.SplicesSince(doc.ID, sess.version)
	if ok {
		for _, sp := range splices {
			text := sess.inc.Text()
			if sp.Offset > len(text) || sp.Offset+sp.DeleteLen > len(text) {
				ok = false
				break
			}
			runeOff := utf8.RuneCountInString(text[:sp.Offset])
			runeDel := utf8.RuneCountInString(text[sp.Offset : sp.Offset+sp.DeleteLen])
			if _, err := sess.inc.Splice(runeOff, runeDel, sp.Insert); err != nil {
				ok = false
				break
			}
			sess.version++
		}
	}
	if ok {
		s.incReplays.Add(1)
		return nil
	}
	// Journal truncated (or the replay raced a concurrent edit):
	// re-seed the session from the store's current text.
	cur, found := s.docs.Get(doc.ID)
	if !found {
		return fmt.Errorf("%w: %q", ErrDocumentNotFound, doc.ID)
	}
	inc, incOK := sess.sp.Incremental(cur.Text)
	if !incOK {
		return fmt.Errorf("service: could not rebuild incremental session for %q", doc.ID)
	}
	sess.inc = inc
	sess.version = cur.Version
	s.incRebuilds.Add(1)
	return nil
}
