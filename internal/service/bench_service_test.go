package service

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"spanners"
)

// benchDocs is a synthetic registry workload: many small documents,
// a few rows each, matched by the seller expression.
func benchDocs(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf("Seller: S%d, lot %d\nBuyer: B%d\nSeller: T%d, lot %d\n", i, i, i, i, i+1)
	}
	return docs
}

// BenchmarkCompileUncached is the cold path every request pays
// without the service layer: parse → decompose → VA compile, then
// extract.
func BenchmarkCompileUncached(b *testing.B) {
	d := spanners.NewDocument(benchDocs(1)[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp, err := spanners.Compile(sellerExpr)
		if err != nil {
			b.Fatal(err)
		}
		if got := sp.ExtractAll(d); len(got) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkCompileCached is the same work through the service cache:
// after the first iteration the compile pipeline is skipped entirely.
func BenchmarkCompileCached(b *testing.B) {
	svc := New(Config{})
	doc := benchDocs(1)[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := svc.Extract(context.Background(), Query{Expr: sellerExpr}, doc)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkExtractBatch measures batch throughput over 64 documents
// at increasing worker counts, the scaling axis of the worker pool.
func BenchmarkExtractBatch(b *testing.B) {
	docs := benchDocs(64)
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc := New(Config{Workers: workers})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.ExtractBatch(context.Background(), Query{Expr: sellerExpr}, docs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamFirstResult measures time to first streamed mapping
// on a document with a quadratic output set — the latency a streaming
// client observes, as opposed to full materialization.
func BenchmarkStreamFirstResult(b *testing.B) {
	svc := New(Config{})
	q := Query{Expr: `a*x{a*}a*`}
	doc := strings.Repeat("a", 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := svc.ExtractStream(context.Background(), q, doc, func(Result) bool { return false })
		if err != nil {
			b.Fatal(err)
		}
	}
}
