package service

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"spanners/internal/docstore"
)

const docSellerExpr = `.*(Seller: x{[^,\n]*}, ID\d*(, \$y{[^\n]*}|)\n).*`

// assertByReference checks that extract-by-reference agrees with plain
// extraction of the stored text.
func assertByReference(t *testing.T, svc *Service, q Query, id string) []Result {
	t.Helper()
	doc, ok := svc.Documents().Get(id)
	if !ok {
		t.Fatalf("document %q vanished", id)
	}
	got, err := svc.ExtractDocument(context.Background(), q, id)
	if err != nil {
		t.Fatalf("ExtractDocument(%q): %v", id, err)
	}
	want, err := svc.Extract(context.Background(), q, doc.Text)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("by-reference results differ from by-value:\ngot  %v\nwant %v", got, want)
	}
	return got
}

func TestExtractDocumentIncremental(t *testing.T) {
	svc := New(Config{})
	q := Query{Expr: docSellerExpr}
	st := svc.Documents()
	if _, err := st.Put("inv", "Seller: John, ID75\nBuyer: Marcelo, ID832\n"); err != nil {
		t.Fatalf("put: %v", err)
	}

	res := assertByReference(t, svc, q, "inv")
	if len(res) == 0 {
		t.Fatal("no results on the seeded document")
	}
	if d := svc.Stats().Documents; d.IncrementalRebuilds != 1 {
		t.Fatalf("first extraction should seed a session: %+v", d)
	}

	// Unchanged document: served from the cached result set.
	assertByReference(t, svc, q, "inv")
	if d := svc.Stats().Documents; d.IncrementalHits != 1 {
		t.Fatalf("second extraction should be a session hit: %+v", d)
	}

	// Append a line: the session catches up via the journal.
	if _, err := st.ApplySplice("inv", docstore.Splice{Offset: len("Seller: John, ID75\nBuyer: Marcelo, ID832\n"), Insert: "Seller: Mark, ID7, $35\n"}); err != nil {
		t.Fatalf("splice: %v", err)
	}
	res2 := assertByReference(t, svc, q, "inv")
	if len(res2) <= len(res) {
		t.Fatalf("append of a matching line did not grow results: %d -> %d", len(res), len(res2))
	}
	d := svc.Stats().Documents
	if d.IncrementalReplays != 1 {
		t.Fatalf("post-splice extraction should replay the journal: %+v", d)
	}
	if d.FullExtractions != 0 {
		t.Fatalf("incremental-capable query fell back to full extraction: %+v", d)
	}
}

func TestExtractDocumentNotFound(t *testing.T) {
	svc := New(Config{})
	_, err := svc.ExtractDocument(context.Background(), Query{Expr: docSellerExpr}, "ghost")
	if !errors.Is(err, ErrDocumentNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
}

func TestExtractDocumentRuleFallsBack(t *testing.T) {
	svc := New(Config{})
	if _, err := svc.Documents().Put("d", "Seller: John, ID75\n"); err != nil {
		t.Fatalf("put: %v", err)
	}
	q := Query{Rule: `.*<x>.* && x.(Seller)`}
	assertByReference(t, svc, q, "d")
	d := svc.Stats().Documents
	if d.FullExtractions != 1 || d.IncrementalRebuilds != 0 {
		t.Fatalf("rule query should take the full-extraction path: %+v", d)
	}
}

func TestExtractDocumentJournalOverflowRebuilds(t *testing.T) {
	svc := New(Config{})
	st := svc.Documents()
	if _, err := st.Put("d", "Seller: A, ID1\n"); err != nil {
		t.Fatalf("put: %v", err)
	}
	q := Query{Expr: docSellerExpr}
	assertByReference(t, svc, q, "d") // seeds the session
	// Push the journal past its bound so catch-up cannot replay.
	for i := 0; i < 40; i++ {
		if _, err := st.ApplySplice("d", docstore.Splice{Offset: 0, Insert: fmt.Sprintf("Seller: S%d, ID2\n", i)}); err != nil {
			t.Fatalf("splice %d: %v", i, err)
		}
	}
	assertByReference(t, svc, q, "d")
	d := svc.Stats().Documents
	if d.IncrementalRebuilds != 2 {
		t.Fatalf("journal overflow should force a rebuild: %+v", d)
	}
}

func TestExtractDocumentLimit(t *testing.T) {
	svc := New(Config{})
	if _, err := svc.Documents().Put("d", "Seller: A, ID1\nSeller: B, ID2\nSeller: C, ID3\n"); err != nil {
		t.Fatalf("put: %v", err)
	}
	res, err := svc.ExtractDocument(context.Background(), Query{Expr: docSellerExpr, Limit: 2}, "d")
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("limit 2 returned %d results", len(res))
	}
}

func TestExtractDocumentEvictedSession(t *testing.T) {
	// A tiny budget evicts the document (and its session) between
	// extractions; re-extraction must re-put transparently fail with
	// not-found rather than serving stale results.
	svc := New(Config{DocStoreBytes: 2048})
	st := svc.Documents()
	if _, err := st.Put("a", "Seller: A, ID1\n"); err != nil {
		t.Fatalf("put a: %v", err)
	}
	q := Query{Expr: docSellerExpr}
	assertByReference(t, svc, q, "a")
	// Fill the store until "a" is evicted.
	for i := 0; i < 4; i++ {
		if _, err := st.Put(fmt.Sprintf("filler%d", i), "Seller: F, ID9\n"); err != nil {
			t.Fatalf("filler put: %v", err)
		}
	}
	if _, ok := st.Get("a"); ok {
		t.Skip("budget did not evict; store accounting changed")
	}
	if _, err := svc.ExtractDocument(context.Background(), q, "a"); !errors.Is(err, ErrDocumentNotFound) {
		t.Fatalf("evicted document: %v", err)
	}
}

func TestDocStoreBytesDefault(t *testing.T) {
	if got := New(Config{}).Documents().Budget(); got != 64<<20 {
		t.Fatalf("default budget: %d", got)
	}
	if got := New(Config{DocStoreBytes: 1 << 10}).Documents().Budget(); got != 1<<10 {
		t.Fatalf("explicit budget: %d", got)
	}
}
