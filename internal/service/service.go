package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"weak"

	"spanners"
	"spanners/internal/algebra"
	"spanners/internal/docstore"
	"spanners/internal/obs"
	"spanners/internal/registry"
)

// Config sizes a Service. Zero values select sensible defaults.
type Config struct {
	// SpannerCacheSize bounds the compiled-spanner LRU (default 256).
	SpannerCacheSize int
	// RuleCacheSize bounds the compiled-rule LRU (default 64).
	RuleCacheSize int
	// Workers bounds batch-extraction concurrency (default 4).
	Workers int
	// Registry optionally backs the service with a persistent spanner
	// registry: queries may then reference stored spanners by
	// "name@version", and Prewarm loads every registered artifact into
	// the caches at startup. Nil disables registry features.
	Registry *registry.Registry
	// DocStoreBytes bounds the document store backing /v1/documents
	// (default 64 MiB). Documents, their splice journals and their
	// attached incremental sessions all count against it; least
	// recently used documents are evicted when it overflows.
	DocStoreBytes int64
	// DifferenceBudget bounds the determinization state budget behind
	// each algebra difference composition; <= 0 selects
	// spanners.DefaultDifferenceBudget. Exhaustion fails the query with
	// algebra.ErrBudget (a client error), never unbounded memory.
	DifferenceBudget int
	// TraceRetention bounds the ring of retained request traces
	// (default obs.DefaultTraceRetention).
	TraceRetention int
	// DisableObservability turns off the tracing/histogram layer
	// entirely: no tracer, no stage or delay histograms, no Prometheus
	// registry. Exists for the instrumentation-overhead benchmarks;
	// production services leave it false.
	DisableObservability bool
}

// DefaultConfig returns the defaults used for zero-valued fields.
func DefaultConfig() Config {
	return Config{SpannerCacheSize: 256, RuleCacheSize: 64, Workers: 4, DocStoreBytes: 64 << 20}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.SpannerCacheSize <= 0 {
		c.SpannerCacheSize = d.SpannerCacheSize
	}
	if c.RuleCacheSize <= 0 {
		c.RuleCacheSize = d.RuleCacheSize
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.DocStoreBytes <= 0 {
		c.DocStoreBytes = d.DocStoreBytes
	}
	return c
}

// Service is a long-lived extraction service: it caches compiled
// spanners and extraction rules by source text and evaluates them over
// documents in batches or as streams. All methods are safe for
// concurrent use.
type Service struct {
	cfg      Config
	spanners *lru[*spanners.Spanner]
	rules    *lru[*spanners.Rule]

	// Registry-backed named spanners: named maps "name@version" to the
	// decoded artifact (or its recompiled fallback), latest caches each
	// name's current version so unpinned lookups skip the disk, and
	// leaves holds the automaton-bearing spanners the algebra planner
	// rebuilt from manifest sources (decoded artifacts carry no
	// automaton and cannot be composed).
	reg     *registry.Registry
	namedMu sync.Mutex
	named   map[string]*spanners.Spanner
	latest  map[string]string
	loading map[string]*namedCall
	leaves  map[string]*spanners.Spanner

	prewarmed     atomic.Uint64
	namedHits     atomic.Uint64
	artifactLoads atomic.Uint64
	fallbacks     atomic.Uint64

	algebraQueries      atomic.Uint64
	algebraCacheHits    atomic.Uint64
	algebraCompositions atomic.Uint64
	algebraLeafBuilds   atomic.Uint64
	algebraLeafHits     atomic.Uint64
	algebraRegistered   atomic.Uint64
	algebraRewrites     atomic.Uint64
	algebraCSEHits      atomic.Uint64
	algebraPrecomposed  atomic.Uint64

	// algebraRuleFires counts planner rule firings per rule name. The
	// map is built once in New from algebra.RuleNames() and never
	// mutated afterwards, so reads need no lock; only the values are
	// atomic.
	algebraRuleFires map[string]*atomic.Uint64

	// Lazy-DFA observability: dfaSpanners indexes one spanner per
	// distinct DFA cache the service has compiled or loaded (caches
	// are per-program and shared, so the index deduplicates by cache
	// id); Stats sums their live counters. References are weak so the
	// index never pins a spanner the LRU has evicted — collected
	// entries drop out of the aggregate (and the map) at the next
	// snapshot. The index is also capped; a service churning through
	// more distinct programs than the cap reports a lower bound, which
	// the snapshot flags.
	dfaMu          sync.Mutex
	dfaSpanners    map[uint64]weak.Pointer[spanners.Spanner]
	sidecarsLoaded atomic.Uint64
	sidecarsSaved  atomic.Uint64

	inFlight atomic.Int64
	emitted  atomic.Uint64

	// docs backs the /v1/documents API; the inc* counters classify
	// by-reference extractions by how they were served (see
	// DocumentStats).
	docs        *docstore.Store
	incHits     atomic.Uint64
	incReplays  atomic.Uint64
	incRebuilds atomic.Uint64
	incFull     atomic.Uint64

	// Engine-selection and compile-cost counters, incremented once per
	// spanner compilation (cache misses only, so the counters measure
	// the artifacts the cache holds rather than request traffic).
	seqSpanners     atomic.Uint64
	fptSpanners     atomic.Uint64
	compiledProgs   atomic.Uint64
	interpFallbacks atomic.Uint64
	compileNanos    atomic.Int64

	// obs is the instrumentation hub (tracer, stage/delay histograms,
	// Prometheus registry); nil when Config.DisableObservability.
	obs *Observability
}

// New builds a service from cfg (zero fields take defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:         cfg,
		spanners:    newLRU[*spanners.Spanner](cfg.SpannerCacheSize),
		rules:       newLRU[*spanners.Rule](cfg.RuleCacheSize),
		reg:         cfg.Registry,
		named:       map[string]*spanners.Spanner{},
		latest:      map[string]string{},
		loading:     map[string]*namedCall{},
		leaves:      map[string]*spanners.Spanner{},
		dfaSpanners: map[uint64]weak.Pointer[spanners.Spanner]{},
		docs:        docstore.New(cfg.DocStoreBytes),
	}
	s.algebraRuleFires = map[string]*atomic.Uint64{}
	for _, rule := range algebra.RuleNames() {
		s.algebraRuleFires[rule] = &atomic.Uint64{}
	}
	if !cfg.DisableObservability {
		s.obs = newObservability(s, cfg.TraceRetention)
	}
	return s
}

// maxTrackedDFAs caps the DFA-observability index: beyond it new
// caches still serve, they just stop being aggregated (Truncated is
// set on the snapshot).
const maxTrackedDFAs = 1024

// trackDFA records sp's DFA cache in the observability index, once
// per distinct cache (refreshing entries whose spanner has been
// collected).
func (s *Service) trackDFA(sp *spanners.Spanner) {
	st := sp.DFAStats()
	if !st.Enabled {
		return
	}
	s.dfaMu.Lock()
	if prev, ok := s.dfaSpanners[st.CacheID]; (!ok || prev.Value() == nil) && len(s.dfaSpanners) < maxTrackedDFAs {
		s.dfaSpanners[st.CacheID] = weak.Make(sp)
	}
	s.dfaMu.Unlock()
}

// DFAStats aggregates the lazy-DFA transition caches behind every
// compiled spanner the service has produced or loaded: resident
// determinized states, transition hit/miss traffic, budget flushes
// with their evictions, sweeps that fell back to bitset stepping,
// superinstruction activity, and how much of the state space came
// pre-warmed from persisted sidecars.
type DFAStats struct {
	Caches          int    `json:"caches"`
	States          int    `json:"states"`
	Hits            uint64 `json:"hits"`
	Misses          uint64 `json:"misses"`
	Evictions       uint64 `json:"evictions"`
	Flushes         uint64 `json:"flushes"`
	Fallbacks       uint64 `json:"fallbacks"`
	FusedExecs      uint64 `json:"fused_execs"`
	SkippedRunes    uint64 `json:"skipped_runes"`
	PrewarmedStates uint64 `json:"prewarmed_states"`
	// Speed-ladder counters: required-literal prefilter checks and
	// the documents they pruned, runes skipped by stop-byte candidate
	// jumps, sweeps whose density heuristic disabled the jumps, the
	// per-mask constrained-DFA family behind pinned-span Eval, and
	// the enumerator's boundary-emission memo traffic.
	PrefilterChecks       uint64 `json:"prefilter_checks"`
	PrefilterPrunes       uint64 `json:"prefilter_prunes"`
	CandidateSkippedRunes uint64 `json:"candidate_skipped_runes"`
	CandidateDisables     uint64 `json:"candidate_disables"`
	ConstrainedCaches     int    `json:"constrained_caches"`
	ConstrainedStates     int    `json:"constrained_states"`
	ConstrainedSegments   uint64 `json:"constrained_segments"`
	BoundaryMemoSize      int    `json:"boundary_memo_size"`
	BoundaryMemoHits      uint64 `json:"boundary_memo_hits"`
	BoundaryMemoMisses    uint64 `json:"boundary_memo_misses"`
	BoundaryMemoFlushes   uint64 `json:"boundary_memo_flushes"`
	// SidecarsLoaded and SidecarsSaved count registry DFA-cache
	// sidecar round trips (load at pre-warm, save on shutdown).
	SidecarsLoaded uint64 `json:"sidecars_loaded"`
	SidecarsSaved  uint64 `json:"sidecars_saved"`
	// Truncated reports that the observability index hit its cap and
	// the sums above are a lower bound.
	Truncated bool `json:"truncated,omitempty"`
}

// dfaStats sums the live counters of every tracked cache, pruning
// entries whose spanner has been collected.
func (s *Service) dfaStats() DFAStats {
	s.dfaMu.Lock()
	tracked := make([]*spanners.Spanner, 0, len(s.dfaSpanners))
	for id, ref := range s.dfaSpanners {
		if sp := ref.Value(); sp != nil {
			tracked = append(tracked, sp)
		} else {
			delete(s.dfaSpanners, id)
		}
	}
	truncated := len(s.dfaSpanners) >= maxTrackedDFAs
	s.dfaMu.Unlock()
	out := DFAStats{
		Caches:         len(tracked),
		SidecarsLoaded: s.sidecarsLoaded.Load(),
		SidecarsSaved:  s.sidecarsSaved.Load(),
		Truncated:      truncated,
	}
	for _, sp := range tracked {
		st := sp.DFAStats()
		out.States += st.States
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Flushes += st.Flushes
		out.Fallbacks += st.Fallbacks
		out.FusedExecs += st.FusedExecs
		out.SkippedRunes += st.SkippedRunes
		out.PrewarmedStates += st.PrewarmedStates
		out.PrefilterChecks += st.PrefilterChecks
		out.PrefilterPrunes += st.PrefilterPrunes
		out.CandidateSkippedRunes += st.CandidateSkippedRunes
		out.CandidateDisables += st.CandidateDisables
		out.ConstrainedCaches += st.ConstrainedCaches
		out.ConstrainedStates += st.ConstrainedStates
		out.ConstrainedSegments += st.ConstrainedSegments
		if bm := sp.BoundaryMemoStats(); bm.Enabled {
			out.BoundaryMemoSize += bm.Size
			out.BoundaryMemoHits += bm.Hits
			out.BoundaryMemoMisses += bm.Misses
			out.BoundaryMemoFlushes += bm.Flushes
		}
	}
	return out
}

// EngineStats summarizes engine selection and compile cost across the
// spanners the service has compiled: how many run the sequential
// PTIME engine (Theorem 5.7) vs the FPT fallback (Theorem 5.10), how
// many execute a compiled program vs the interpreted fallback, and
// the cumulative compilation time the cache amortizes.
type EngineStats struct {
	SequentialSpanners   uint64 `json:"sequential_spanners"`
	FPTSpanners          uint64 `json:"fpt_spanners"`
	CompiledPrograms     uint64 `json:"compiled_programs"`
	InterpretedFallbacks uint64 `json:"interpreted_fallbacks"`
	CompileNanos         int64  `json:"compile_ns_total"`
}

// RegistryStats summarizes the persistent-registry integration: how
// many artifacts the startup pre-warm decoded, how the named-spanner
// index is serving ("hits" never touched disk, "artifact_loads"
// decoded a stored program without recompiling, "source_fallbacks"
// had to recompile from the manifest source because the artifact was
// unusable), and how many named spanners are resident.
type RegistryStats struct {
	Enabled         bool   `json:"enabled"`
	Prewarmed       uint64 `json:"prewarmed"`
	NamedHits       uint64 `json:"named_hits"`
	ArtifactLoads   uint64 `json:"artifact_loads"`
	SourceFallbacks uint64 `json:"source_fallbacks"`
	Resident        int    `json:"resident"`
}

// Stats is the service-level metrics snapshot: the two compile caches
// plus request-path, engine-selection, registry and algebra counters.
type Stats struct {
	Spanners  CacheStats    `json:"spanner_cache"`
	Rules     CacheStats    `json:"rule_cache"`
	Engine    EngineStats   `json:"engine"`
	DFA       DFAStats      `json:"dfa"`
	Registry  RegistryStats `json:"registry"`
	Algebra   AlgebraStats  `json:"algebra"`
	Documents DocumentStats `json:"documents"`
	InFlight  int64         `json:"in_flight"`
	Emitted   uint64        `json:"mappings_emitted"`
}

// Stats returns a point-in-time snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.namedMu.Lock()
	resident := len(s.named)
	s.namedMu.Unlock()
	return Stats{
		Spanners: s.spanners.stats(),
		Rules:    s.rules.stats(),
		DFA:      s.dfaStats(),
		Engine: EngineStats{
			SequentialSpanners:   s.seqSpanners.Load(),
			FPTSpanners:          s.fptSpanners.Load(),
			CompiledPrograms:     s.compiledProgs.Load(),
			InterpretedFallbacks: s.interpFallbacks.Load(),
			CompileNanos:         s.compileNanos.Load(),
		},
		Registry: RegistryStats{
			Enabled:         s.reg != nil,
			Prewarmed:       s.prewarmed.Load(),
			NamedHits:       s.namedHits.Load(),
			ArtifactLoads:   s.artifactLoads.Load(),
			SourceFallbacks: s.fallbacks.Load(),
			Resident:        resident,
		},
		Algebra: AlgebraStats{
			Queries:      s.algebraQueries.Load(),
			CacheHits:    s.algebraCacheHits.Load(),
			Compositions: s.algebraCompositions.Load(),
			LeafBuilds:   s.algebraLeafBuilds.Load(),
			LeafHits:     s.algebraLeafHits.Load(),
			Registered:   s.algebraRegistered.Load(),
			Rewrites:     s.algebraRewrites.Load(),
			CSEHits:      s.algebraCSEHits.Load(),
			Precomposed:  s.algebraPrecomposed.Load(),
		},
		Documents: s.documentStats(),
		InFlight:  s.inFlight.Load(),
		Emitted:   s.emitted.Load(),
	}
}

// Spanner returns the compiled spanner for expr, compiling on a cache
// miss.
func (s *Service) Spanner(expr string) (*spanners.Spanner, error) {
	sp, _, err := s.spannerTracked(expr)
	return sp, err
}

// spannerTracked is Spanner reporting whether this call performed the
// compilation (false: served from cache or joined another caller's
// in-flight compile) — the signal the observed compile path uses to
// label its span "compile" vs "cache-lookup".
func (s *Service) spannerTracked(expr string) (*spanners.Spanner, bool, error) {
	compiled := false
	sp, err := s.spanners.get(exprKeyPrefix+expr, func() (*spanners.Spanner, error) {
		compiled = true
		start := time.Now()
		sp, err := spanners.Compile(expr)
		if err != nil {
			return nil, err
		}
		s.compileNanos.Add(time.Since(start).Nanoseconds())
		s.recordEngine(sp)
		return sp, nil
	})
	return sp, compiled, err
}

// recordEngine counts sp into the engine-selection counters, once per
// spanner entering a cache (inline compile or algebra composition).
func (s *Service) recordEngine(sp *spanners.Spanner) {
	s.trackDFA(sp)
	if sp.Sequential() {
		s.seqSpanners.Add(1)
	} else {
		s.fptSpanners.Add(1)
	}
	if sp.Compiled() {
		s.compiledProgs.Add(1)
	} else {
		s.interpFallbacks.Add(1)
	}
}

// Rule returns the compiled extraction rule for input, compiling on a
// cache miss.
func (s *Service) Rule(input string) (*spanners.Rule, error) {
	r, _, err := s.ruleTracked(input)
	return r, err
}

// ruleTracked is Rule reporting whether this call performed the parse.
func (s *Service) ruleTracked(input string) (*spanners.Rule, bool, error) {
	compiled := false
	r, err := s.rules.get(input, func() (*spanners.Rule, error) {
		compiled = true
		return spanners.ParseRule(input)
	})
	return r, compiled, err
}

// Query names what to extract with: exactly one of Expr (an RGX
// expression), Rule (an extraction rule, docExpr && x.(…) syntax),
// Spanner (a registry reference, "name" or "name@version") or Algebra
// (a spanner-algebra expression composing registry entries, e.g.
// "join(project(invoices@v, buyer), union(sellers, sellers-eu))")
// must be set. Limit, when positive, caps the number of mappings per
// document.
type Query struct {
	Expr    string `json:"expr,omitempty"`
	Rule    string `json:"rule,omitempty"`
	Spanner string `json:"spanner,omitempty"`
	Algebra string `json:"algebra,omitempty"`
	Limit   int    `json:"limit,omitempty"`
}

// ErrBadQuery is returned when a query does not set exactly one of
// Expr/Rule/Spanner/Algebra.
var ErrBadQuery = errors.New("service: query must set exactly one of expr, rule, spanner or algebra")

// enumerator abstracts the two compiled forms behind a common
// streaming interface. Spanners stream with polynomial delay and
// observe ctx between outputs; rules materialize first (rule
// evaluation is NP-hard in general, Theorem 5.8) and then replay, so
// ctx is consulted before evaluation starts and between replayed
// outputs, but a rule evaluation already in progress runs to
// completion — cancellation cannot reach inside ExtractAll today.
type enumerator func(ctx context.Context, d *spanners.Document, yield func(spanners.Mapping) bool) error

// resolved is the outcome of query resolution: the enumerator, the
// spanner behind it (nil for rule queries, whose evaluation cannot
// stream), the stage label describing how the query was resolved
// (cache-lookup / compile / registry-load), and — for a fresh algebra
// composition — the plan carrying per-operator timings.
type resolved struct {
	enum  enumerator
	sp    *spanners.Spanner
	stage string
	plan  *algebra.Plan
}

func stageFor(fresh bool, freshStage string) string {
	if fresh {
		return freshStage
	}
	return obs.StageCacheLookup
}

func (s *Service) compile(q Query) (resolved, error) {
	set := 0
	for _, f := range []string{q.Expr, q.Rule, q.Spanner, q.Algebra} {
		if f != "" {
			set++
		}
	}
	if set > 1 {
		return resolved{}, ErrBadQuery
	}
	switch {
	case q.Spanner != "":
		sp, cold, err := s.namedSpannerTracked(q.Spanner)
		if err != nil {
			return resolved{}, fmt.Errorf("resolve spanner: %w", err)
		}
		return resolved{enum: sp.EnumerateContext, sp: sp, stage: stageFor(cold, obs.StageRegistryLoad)}, nil
	case q.Algebra != "":
		// Not re-wrapped: algebra and registry errors already carry
		// their own "algebra:" / "leaf name@version:" context.
		sp, plan, fresh, err := s.algebraSpannerTracked(q.Algebra)
		if err != nil {
			return resolved{}, err
		}
		return resolved{enum: sp.EnumerateContext, sp: sp, stage: stageFor(fresh, obs.StageCompile), plan: plan}, nil
	case q.Expr != "":
		sp, fresh, err := s.spannerTracked(q.Expr)
		if err != nil {
			return resolved{}, fmt.Errorf("compile expr: %w", err)
		}
		return resolved{enum: sp.EnumerateContext, sp: sp, stage: stageFor(fresh, obs.StageCompile)}, nil
	case q.Rule != "":
		r, fresh, err := s.ruleTracked(q.Rule)
		if err != nil {
			return resolved{}, fmt.Errorf("compile rule: %w", err)
		}
		enum := func(ctx context.Context, d *spanners.Document, yield func(spanners.Mapping) bool) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			for _, m := range r.ExtractAll(d) {
				if err := ctx.Err(); err != nil {
					return err
				}
				if !yield(m) {
					return nil
				}
			}
			return nil
		}
		return resolved{enum: enum, stage: stageFor(fresh, obs.StageCompile)}, nil
	default:
		return resolved{}, ErrBadQuery
	}
}

// Compiled is a query resolved against the compile caches, ready to
// evaluate without further cache traffic. It lets callers validate a
// query (and pay the cache lookup) exactly once before committing to
// a response format, keeping the hit/miss counters an honest measure
// of per-request amortization.
type Compiled struct {
	svc   *Service
	limit int
	enum  enumerator
	// sp is the spanner behind enum, nil for rule queries; the observed
	// extraction paths need it to reach EnumerateObserved.
	sp *spanners.Spanner
}

// CompileQuery resolves q against the compile caches.
func (s *Service) CompileQuery(q Query) (*Compiled, error) {
	return s.CompileQueryCtx(context.Background(), q)
}

// CompileQueryCtx is CompileQuery recording the resolution into the
// observability layer: the stage histogram always (labeled
// cache-lookup, compile or registry-load by what resolution actually
// did), plus a span on the request trace when ctx carries one. A
// fresh algebra composition additionally lands its per-operator
// timings in the operator histogram and as "algebra:<op>" spans.
func (s *Service) CompileQueryCtx(ctx context.Context, q Query) (*Compiled, error) {
	start := time.Now()
	r, err := s.compile(q)
	d := time.Since(start)
	if err != nil {
		return nil, err
	}
	t := obs.TraceFrom(ctx)
	s.obs.stage(r.stage, d)
	t.AddSpan(r.stage, start, d, "")
	if r.plan != nil {
		s.recordOpCosts(t, r.plan.OpCosts)
	}
	return &Compiled{svc: s, limit: q.Limit, enum: r.enum, sp: r.sp}, nil
}

// deliver wraps yield with the per-mapping semantics shared by every
// extraction path: encoding against the document, the emitted
// counter, and the per-document limit.
func (c *Compiled) deliver(d *spanners.Document, yield func(Result) bool) func(spanners.Mapping) bool {
	n := 0
	return func(m spanners.Mapping) bool {
		c.svc.emitted.Add(1)
		n++
		if !yield(EncodeMapping(d, m)) {
			return false
		}
		return c.limit <= 0 || n < c.limit
	}
}

// Stream evaluates the compiled query over doc, invoking yield once
// per output mapping as enumeration produces it; see
// Service.ExtractStream for the delivery and cancellation contract.
func (c *Compiled) Stream(ctx context.Context, doc string, yield func(Result) bool) error {
	c.svc.inFlight.Add(1)
	defer c.svc.inFlight.Add(-1)

	d := spanners.NewDocument(doc)
	t := obs.TraceFrom(ctx)
	if o := c.svc.observerFor(t); o != nil && c.sp != nil {
		start := time.Now()
		err := c.sp.EnumerateObserved(ctx, d, o, c.deliver(d, yield))
		total := time.Since(start)
		c.svc.obs.stage(obs.StageStream, total)
		t.AddSpan(obs.StageStream, start, total, traceDetail(d.Len(), "runes"))
		return err
	}
	return c.enum(ctx, d, c.deliver(d, yield))
}

// extractOne collects the full (limit-capped) result set for one
// document. Metrics-wise it is Stream minus the in-flight counter,
// which ExtractBatch accounts once per request rather than per
// document. o, when non-nil, receives the per-stage timings — the
// batch workers pass goroutine-local observers (see batchObserver) so
// per-document recording never contends.
func (c *Compiled) extractOne(ctx context.Context, doc string, o *obs.StageObserver) ([]Result, error) {
	d := spanners.NewDocument(doc)
	out := []Result{}
	collect := c.deliver(d, func(r Result) bool {
		out = append(out, r)
		return true
	})
	var err error
	if o != nil && c.sp != nil {
		err = c.sp.EnumerateObserved(ctx, d, o, collect)
	} else {
		err = c.enum(ctx, d, collect)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Extract runs q over a single document and returns its results,
// encoded with span contents. It is ExtractBatch for one document.
func (s *Service) Extract(ctx context.Context, q Query, doc string) ([]Result, error) {
	batch, err := s.ExtractBatch(ctx, q, []string{doc})
	if err != nil {
		return nil, err
	}
	return batch[0], nil
}

// ExtractBatch fans docs across a bounded worker pool and returns one
// result slice per document, in input order regardless of completion
// order. The query is compiled once (or served from cache) before any
// worker starts. Cancellation via ctx stops all workers; the first
// error wins and the partial results are discarded.
func (s *Service) ExtractBatch(ctx context.Context, q Query, docs []string) ([][]Result, error) {
	compiled, err := s.CompileQueryCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	batchStart := time.Now()
	defer func() {
		total := time.Since(batchStart)
		s.obs.stage(obs.StageBatch, total)
		obs.TraceFrom(ctx).AddSpan(obs.StageBatch, batchStart, total, traceDetail(len(docs), "docs"))
	}()

	results := make([][]Result, len(docs))
	workers := s.cfg.Workers
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers < 1 {
		workers = 1
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker records stages into a private histogram
			// family, merged into the shared one when it drains.
			o, local := s.batchObserver(workers)
			if local != nil {
				defer s.obs.StageDur.Absorb(local)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) || ctx.Err() != nil {
					return
				}
				res, err := compiled.extractOne(ctx, docs[i], o)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// ExtractStream runs q over one document, invoking yield once per
// output mapping as enumeration produces it. For spanner queries the
// delay between calls is polynomial when the spanner is sequential
// (Theorem 5.7), so the first results arrive long before the output
// set is complete. yield returning false stops the stream early with
// a nil error; a cancelled ctx stops it with the context's error.
func (s *Service) ExtractStream(ctx context.Context, q Query, doc string, yield func(Result) bool) error {
	c, err := s.CompileQueryCtx(ctx, q)
	if err != nil {
		return err
	}
	return c.Stream(ctx, doc, yield)
}

// StreamChan is ExtractStream as a channel: results arrive on the
// returned channel, which is closed when the stream ends. A non-nil
// terminal error (compile failure or cancellation) is delivered on the
// error channel, which always receives exactly one value. Callers
// that stop receiving before the result channel closes must cancel
// ctx, or the producer goroutine blocks forever on the abandoned
// channel and the terminal error is never delivered.
func (s *Service) StreamChan(ctx context.Context, q Query, doc string) (<-chan Result, <-chan error) {
	out := make(chan Result)
	errc := make(chan error, 1)
	go func() {
		defer close(out)
		interrupted := false
		err := s.ExtractStream(ctx, q, doc, func(r Result) bool {
			select {
			case out <- r:
				return true
			case <-ctx.Done():
				interrupted = true
				return false
			}
		})
		if err == nil && interrupted {
			err = ctx.Err()
		}
		errc <- err
	}()
	return out, errc
}
