package service

import "spanners"

// SpanJSON is the wire form of one extracted span: 1-based rune
// positions (start, end) in the paper's span convention plus the
// span's content, so clients need not re-slice the document.
type SpanJSON struct {
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Content string `json:"content"`
}

// Result is the wire form of one output mapping: assigned variables
// only — a variable absent from the map was not extracted, which is
// the incomplete-information semantics, not an error.
type Result map[string]SpanJSON

// EncodeMapping renders m against d as a wire result.
func EncodeMapping(d *spanners.Document, m spanners.Mapping) Result {
	out := make(Result, len(m))
	for v, sp := range m {
		out[string(v)] = SpanJSON{Start: sp.Start, End: sp.End, Content: d.Content(sp)}
	}
	return out
}
