package service

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spanners"
	"spanners/internal/algebra"
	"spanners/internal/registry"
)

// encodeAll renders every mapping of sp on doc through the service
// wire encoding, so tests compare byte-identical results.
func encodeAll(sp *spanners.Spanner, doc string) string {
	d := spanners.NewDocument(doc)
	out := []Result{}
	for _, m := range sp.ExtractAll(d) {
		out = append(out, EncodeMapping(d, m))
	}
	b, _ := json.Marshal(out)
	return string(b)
}

func encodeResults(res []Result) string {
	if res == nil {
		res = []Result{}
	}
	b, _ := json.Marshal(res)
	return string(b)
}

func TestAlgebraQueryMatchesLocalComposition(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("y3", ".*y{...}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("z3", ".*z{...}.*"); err != nil {
		t.Fatal(err)
	}

	doc := "abcde"
	local := spanners.Join(spanners.MustCompile(".*y{...}.*"), spanners.MustCompile(".*z{...}.*"))
	want := encodeAll(local, doc)

	ctx := context.Background()
	res, err := svc.Extract(ctx, Query{Algebra: "join(y3, z3)"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(res); got != want {
		t.Fatalf("algebra join = %s\nlocal composition = %s", got, want)
	}

	sp, err := svc.AlgebraSpanner("join(y3, z3)")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Compiled() {
		t.Fatal("composed algebra spanner runs the interpreted fallback, want compiled program")
	}

	st := svc.Stats()
	if st.Algebra.Queries != 2 || st.Algebra.Compositions != 1 || st.Algebra.CacheHits != 1 {
		t.Fatalf("algebra stats = %+v, want 2 queries = 1 composition + 1 cache hit", st.Algebra)
	}
	if st.Algebra.LeafBuilds != 2 {
		t.Fatalf("leaf builds = %d, want 2 (one per leaf, then resident)", st.Algebra.LeafBuilds)
	}

	// A third evaluation is a pure cache hit: no new composition, no
	// new leaf work.
	if _, err := svc.Extract(ctx, Query{Algebra: "join(y3,z3)"}, doc); err != nil {
		t.Fatal(err)
	}
	st2 := svc.Stats()
	if st2.Algebra.Compositions != 1 || st2.Algebra.LeafBuilds != 2 || st2.Algebra.CacheHits != 2 {
		t.Fatalf("repeat algebra stats = %+v, want composition/leaves unchanged", st2.Algebra)
	}
}

func TestAlgebraProjectAndUnionThroughService(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("ab", "x{ab}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("de", ".*w{de}"); err != nil {
		t.Fatal(err)
	}
	doc := "abcde"
	local := spanners.Project(
		spanners.Union(spanners.MustCompile("x{ab}.*"), spanners.MustCompile(".*w{de}")), "x")
	res, err := svc.Extract(context.Background(), Query{Algebra: "project(union(ab, de), x)"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeResults(res), encodeAll(local, doc); got != want {
		t.Fatalf("project(union) = %s, want %s", got, want)
	}
}

// TestAlgebraCacheKeyHygiene is the regression test for the key-space
// fix: a canonical algebra expression is also a syntactically valid
// RGX, and the two must never collide in the shared LRU.
func TestAlgebraCacheKeyHygiene(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	amen, _, err := svc.RegisterSpanner("aa", "y{a}")
	if err != nil {
		t.Fatal(err)
	}
	bman, _, err := svc.RegisterSpanner("bb", "z{b}")
	if err != nil {
		t.Fatal(err)
	}

	composed, err := svc.AlgebraSpanner("union(aa, bb)")
	if err != nil {
		t.Fatal(err)
	}
	key := "union(" + amen.Ref() + "," + bman.Ref() + ")"
	if composed.String() != key {
		t.Fatalf("composed spanner reports source %q, want pinned canonical %q", composed, key)
	}

	// The same text as an inline RGX: letters, parens, '@' and ','
	// are all literals, so it compiles — to a literal matcher, not
	// the composition.
	inline, err := svc.Spanner(key)
	if err != nil {
		t.Fatalf("inline compile of %q: %v", key, err)
	}
	if inline == composed {
		t.Fatal("inline expression was served the composed algebra spanner: cache keys collide")
	}
	if len(inline.Vars()) != 0 {
		t.Fatalf("inline literal spanner binds %v, want no variables", inline.Vars())
	}
	if got := composed.Vars(); len(got) != 2 {
		t.Fatalf("composed spanner binds %v, want [y z]", got)
	}

	// And the reverse order: ask inline first, algebra second.
	svc2 := newRegistryService(t, svc.Registry().Dir())
	if _, err := svc2.Spanner(key); err != nil {
		t.Fatal(err)
	}
	composed2, err := svc2.AlgebraSpanner(key) // parses: union over two pinned leaves
	if err != nil {
		t.Fatal(err)
	}
	if len(composed2.Vars()) != 2 {
		t.Fatalf("algebra after inline binds %v: inline entry shadowed the composition", composed2.Vars())
	}
}

func TestAlgebraQueryErrors(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("aa", "y{a}"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name string
		q    Query
		want error
	}{
		{"syntax", Query{Algebra: "union(aa"}, algebra.ErrSyntax},
		{"arity", Query{Algebra: "union(aa)"}, algebra.ErrSyntax},
		{"unknown name", Query{Algebra: "union(aa, ghost)"}, registry.ErrNotFound},
		{"unknown pinned version", Query{Algebra: "aa@ffffffffffff"}, registry.ErrNotFound},
		{"unbound var", Query{Algebra: "project(aa, zz)"}, algebra.ErrUnbound},
		{"difference schema mismatch", Query{Algebra: "difference(aa, project(aa))"}, algebra.ErrUnbound},
		{"difference arity", Query{Algebra: "difference(aa)"}, algebra.ErrSyntax},
		{"two query fields", Query{Algebra: "aa", Expr: "x{a}"}, ErrBadQuery},
	}
	for _, c := range cases {
		_, err := svc.Extract(ctx, c.q, "a")
		if !errors.Is(err, c.want) {
			t.Errorf("%s: error = %v, want %v", c.name, err, c.want)
		}
	}

	// Without a registry the algebra has nothing to compose over.
	if _, err := New(Config{}).Extract(ctx, Query{Algebra: "union(aa, aa)"}, "a"); !errors.Is(err, ErrNoRegistry) {
		t.Errorf("no registry: error = %v, want ErrNoRegistry", err)
	}
}

func TestRegisterAlgebraPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	if _, _, err := svc.RegisterSpanner("y3", ".*y{...}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("z3", ".*z{...}.*"); err != nil {
		t.Fatal(err)
	}
	man, created, err := svc.RegisterAlgebra("pair", "join(y3, z3)")
	if err != nil || !created {
		t.Fatalf("RegisterAlgebra: created=%v err=%v", created, err)
	}
	if man.Kind != registry.KindAlgebra {
		t.Fatalf("manifest kind = %q, want %q", man.Kind, registry.KindAlgebra)
	}

	doc := "abcde"
	local := spanners.Join(spanners.MustCompile(".*y{...}.*"), spanners.MustCompile(".*z{...}.*"))
	want := encodeAll(local, doc)

	// Same process: the name serves immediately.
	ctx := context.Background()
	res, err := svc.Extract(ctx, Query{Spanner: "pair"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(res); got != want {
		t.Fatalf("pair = %s, want %s", got, want)
	}

	// Restart: the composed program is decoded from its artifact, no
	// compilation and no replanning.
	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 3 {
		t.Fatalf("Prewarm = %d, %v", n, err)
	}
	res, err = svc2.Extract(ctx, Query{Spanner: man.Ref()}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeResults(res); got != want {
		t.Fatalf("pair after restart = %s, want %s", got, want)
	}
	st := svc2.Stats()
	if st.Spanners.Misses != 0 || st.Algebra.Compositions != 0 {
		t.Fatalf("restart stats: %d compile misses, %d compositions; want 0, 0", st.Spanners.Misses, st.Algebra.Compositions)
	}

	// The registered algebra name composes as a leaf of a larger
	// expression — replanned from its pinned stored source.
	res, err = svc2.Extract(ctx, Query{Algebra: "project(pair, y)"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeResults(res), encodeAll(spanners.Project(local, "y"), doc); got != want {
		t.Fatalf("project(pair, y) = %s, want %s", got, want)
	}
}

func TestAlgebraArtifactCorruptionFallsBackToReplan(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	if _, _, err := svc.RegisterSpanner("y3", ".*y{...}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("z3", ".*z{...}.*"); err != nil {
		t.Fatal(err)
	}
	man, _, err := svc.RegisterAlgebra("pair", "join(y3, z3)")
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the stored composed artifact.
	binPath := filepath.Join(dir, "pair", man.Version+".bin")
	b, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(binPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := newRegistryService(t, dir)
	doc := "abcde"
	local := spanners.Join(spanners.MustCompile(".*y{...}.*"), spanners.MustCompile(".*z{...}.*"))
	res, err := svc2.Extract(context.Background(), Query{Spanner: "pair"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeResults(res), encodeAll(local, doc); got != want {
		t.Fatalf("replanned pair = %s, want %s", got, want)
	}
	st := svc2.Stats()
	if st.Registry.SourceFallbacks != 1 {
		t.Fatalf("source fallbacks = %d, want 1 (corrupt algebra artifact replanned)", st.Registry.SourceFallbacks)
	}
	if st.Algebra.Compositions != 1 {
		t.Fatalf("compositions = %d, want 1 (fallback replans the stored expression)", st.Algebra.Compositions)
	}
}

func TestAlgebraDifferenceThroughService(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("runs", "x{a+}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("pairs", "x{aa}.*"); err != nil {
		t.Fatal(err)
	}

	doc := "aaab"
	local, err := spanners.Difference(
		spanners.MustCompile("x{a+}.*"), spanners.MustCompile("x{aa}.*"),
		spanners.DefaultDifferenceBudget)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Extract(context.Background(), Query{Algebra: "difference(runs, pairs)"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeResults(res), encodeAll(local, doc); got != want {
		t.Fatalf("difference(runs, pairs) = %s, want %s", got, want)
	}
	if len(res) == 0 {
		t.Fatal("difference produced nothing — the test lost its subject")
	}
}

func TestAlgebraDifferenceBudgetTypedError(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A budget of 2 states cannot hold any real determinization.
	svc := New(Config{Registry: reg, DifferenceBudget: 2})
	if _, _, err := svc.RegisterSpanner("aa", ".*y{a+}.*"); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Extract(context.Background(), Query{Algebra: "difference(aa, aa)"}, "aaa")
	if !errors.Is(err, algebra.ErrBudget) {
		t.Fatalf("tiny-budget difference error = %v, want algebra.ErrBudget", err)
	}

	// The same expression under the default budget composes fine: the
	// failure above was the budget, not the query.
	svc2 := newRegistryService(t, dir)
	if _, err := svc2.Extract(context.Background(), Query{Algebra: "difference(aa, aa)"}, "aaa"); err != nil {
		t.Fatalf("default-budget difference: %v", err)
	}
}

func TestPrecomposeWarmsRegisteredAlgebra(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	if _, _, err := svc.RegisterSpanner("runs", "x{a+}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("pairs", "x{aa}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterAlgebra("rest", "difference(runs, pairs)"); err != nil {
		t.Fatal(err)
	}

	// Restart, pre-warm, pre-compose: the difference artifact survives
	// and its composition is rebuilt before any query arrives.
	svc2 := newRegistryService(t, dir)
	if _, err := svc2.Prewarm(); err != nil {
		t.Fatal(err)
	}
	n, err := svc2.Precompose()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Precompose = %d artifacts, want 1 (only the algebra entry)", n)
	}
	st := svc2.Stats()
	if st.Algebra.Precomposed != 1 || st.Algebra.Compositions != 1 {
		t.Fatalf("post-precompose stats = %+v, want 1 precomposed = 1 composition", st.Algebra)
	}

	// The equivalent query is now a pure cache hit — zero compile
	// misses, zero new compositions.
	doc := "aaab"
	local, err := spanners.Difference(
		spanners.MustCompile("x{a+}.*"), spanners.MustCompile("x{aa}.*"),
		spanners.DefaultDifferenceBudget)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc2.Extract(context.Background(), Query{Algebra: "difference(runs, pairs)"}, doc)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := encodeResults(res), encodeAll(local, doc); got != want {
		t.Fatalf("precomposed difference = %s, want %s", got, want)
	}
	st = svc2.Stats()
	if st.Algebra.Compositions != 1 || st.Algebra.CacheHits != 1 {
		t.Fatalf("post-query stats = %+v, want the query served from the precomposed entry", st.Algebra)
	}

	// A registry without algebra artifacts precomposes nothing.
	svc3 := newRegistryService(t, t.TempDir())
	if n, err := svc3.Precompose(); err != nil || n != 0 {
		t.Fatalf("empty Precompose = %d, %v; want 0, nil", n, err)
	}
	if _, err := New(Config{}).Precompose(); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("no-registry Precompose error = %v, want ErrNoRegistry", err)
	}
}

func TestAlgebraPlannerStatsCountRewrites(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("xy", ".*x{a}y{b?}.*"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("yz", ".*y{.}z{.?}.*"); err != nil {
		t.Fatal(err)
	}
	// project-past-join must fire on the first query. The second joins
	// two identical subtrees: join dedup would be unsound, so both
	// operands survive to composition — where CSE composes them once.
	if _, err := svc.AlgebraSpanner("project(join(xy, yz), x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.AlgebraSpanner("join(union(xy, yz), union(xy, yz))"); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Algebra.Rewrites == 0 {
		t.Fatalf("planner stats = %+v, want rewrites > 0", st.Algebra)
	}
	if st.Algebra.CSEHits == 0 {
		t.Fatalf("planner stats = %+v, want CSE hits > 0", st.Algebra)
	}
	fired := false
	for _, c := range svc.algebraRuleFires {
		if c.Load() > 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("no per-rule counter ticked despite recorded rewrites")
	}
}

func TestAlgebraLatestMovesWithReRegistration(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	if _, _, err := svc.RegisterSpanner("aa", "y{a}"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("bb", "z{b}"); err != nil {
		t.Fatal(err)
	}
	sp1, err := svc.AlgebraSpanner("union(aa, bb)")
	if err != nil {
		t.Fatal(err)
	}
	// Re-register aa with a different source: latest moves, so the
	// same unpinned expression now pins differently and recomposes.
	if _, _, err := svc.RegisterSpanner("aa", "y{aa}"); err != nil {
		t.Fatal(err)
	}
	sp2, err := svc.AlgebraSpanner("union(aa, bb)")
	if err != nil {
		t.Fatal(err)
	}
	if sp1.String() == sp2.String() {
		t.Fatalf("pinned key %q did not move with the latest pointer", sp1)
	}
	d := spanners.NewDocument("aa")
	if len(sp2.ExtractAll(d)) == 0 {
		t.Fatal("recomposed spanner does not reflect the new leaf source")
	}
}
