package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spanners/internal/registry"
)

// sellerExpr is shared with service_test.go.

func newRegistryService(t *testing.T, dir string) *Service {
	t.Helper()
	reg, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Registry: reg})
}

func TestNamedSpannerServesWithoutCompileMisses(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	man, created, err := svc.RegisterSpanner("seller", sellerExpr)
	if err != nil || !created {
		t.Fatalf("RegisterSpanner: created=%v err=%v", created, err)
	}

	// A second service over the same directory simulates a process
	// restart: pre-warm, then serve a pinned reference.
	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 1 {
		t.Fatalf("Prewarm = %d, %v", n, err)
	}

	ctx := context.Background()
	doc := "Seller: Anna, 12 Hill St\n"
	for _, ref := range []string{man.Ref(), "seller"} {
		res, err := svc2.Extract(ctx, Query{Spanner: ref}, doc)
		if err != nil {
			t.Fatalf("Extract(%q): %v", ref, err)
		}
		if len(res) != 1 || res[0]["x"].Content != "Anna" {
			t.Fatalf("Extract(%q) = %v", ref, res)
		}
	}

	st := svc2.Stats()
	if st.Spanners.Misses != 0 {
		t.Fatalf("compile-cache misses = %d after pre-warmed named extraction, want 0", st.Spanners.Misses)
	}
	if st.Registry.Prewarmed != 1 || st.Registry.ArtifactLoads != 1 {
		t.Fatalf("registry stats = %+v, want 1 prewarmed artifact load", st.Registry)
	}
	if st.Registry.NamedHits < 1 {
		t.Fatalf("named hits = %d, want >= 1", st.Registry.NamedHits)
	}
	if st.Registry.SourceFallbacks != 0 {
		t.Fatalf("source fallbacks = %d, want 0", st.Registry.SourceFallbacks)
	}

	// The registering service compiled the source itself, so ITS
	// expression cache is seeded: the same source inline is a hit.
	if _, err := svc.Extract(ctx, Query{Expr: sellerExpr}, doc); err != nil {
		t.Fatal(err)
	}
	if cs := svc.Stats().Spanners; cs.Misses != 0 || cs.Hits < 1 {
		t.Fatalf("inline query on the registering service: %+v, want a hit and no misses", cs)
	}

	// The restarted service only decoded the artifact: a decoded
	// program's embedded source string is unverified, so it must NOT
	// seed the expression cache (a crafted artifact could otherwise
	// poison unrelated inline queries). Inline compiles fresh here.
	if _, err := svc2.Extract(ctx, Query{Expr: sellerExpr}, doc); err != nil {
		t.Fatal(err)
	}
	if cs := svc2.Stats().Spanners; cs.Misses != 1 {
		t.Fatalf("inline query after artifact pre-warm: %+v, want one honest miss", cs)
	}
}

func TestNamedSpannerPinnedVersionStable(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	m1, _, err := svc.RegisterSpanner("q", `x{a+}b*`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.RegisterSpanner("q", `a*y{b+}`); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	// Unpinned resolves to the newest registration…
	res, err := svc.Extract(ctx, Query{Spanner: "q"}, "ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["y"].Content != "b" {
		t.Fatalf("latest q = %v, want y=b", res)
	}
	// …while the pin still serves the old artifact, and does not
	// disturb the latest pointer.
	res, err = svc.Extract(ctx, Query{Spanner: "q@" + m1.Version}, "ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0]["x"].Content != "a" {
		t.Fatalf("pinned q@%s = %v, want x=a", m1.Version, res)
	}
	res, err = svc.Extract(ctx, Query{Spanner: "q"}, "ab")
	if err != nil || len(res) != 1 || res[0]["y"].Content != "b" {
		t.Fatalf("latest after pinned lookup = %v err=%v", res, err)
	}
}

func TestCorruptArtifactFallsBackToSource(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	man, _, err := svc.RegisterSpanner("seller", sellerExpr)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the artifact on disk, then restart.
	binPath := filepath.Join(dir, "seller", man.Version+".bin")
	b, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(binPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 1 {
		t.Fatalf("Prewarm over corrupt artifact = %d, %v (want recompile fallback)", n, err)
	}
	res, err := svc2.Extract(context.Background(), Query{Spanner: man.Ref()}, "Seller: Bo, 1 Rd\n")
	if err != nil || len(res) != 1 {
		t.Fatalf("extraction after fallback = %v, %v", res, err)
	}
	st := svc2.Stats()
	if st.Registry.SourceFallbacks != 1 || st.Registry.ArtifactLoads != 0 {
		t.Fatalf("registry stats = %+v, want exactly one source fallback", st.Registry)
	}
	if st.Spanners.Misses != 1 {
		t.Fatalf("compile misses = %d, want 1 (the recompile)", st.Spanners.Misses)
	}
}

// TestMissingArtifactFallsBackToSource: a manifest whose .bin file
// vanished (interrupted delete, partial sync) must still serve via
// the recompile-from-source fallback, like a corrupt artifact does.
func TestMissingArtifactFallsBackToSource(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	man, _, err := svc.RegisterSpanner("seller", sellerExpr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "seller", man.Version+".bin")); err != nil {
		t.Fatal(err)
	}
	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 1 {
		t.Fatalf("Prewarm with missing .bin = %d, %v", n, err)
	}
	res, err := svc2.Extract(context.Background(), Query{Spanner: man.Ref()}, "Seller: Bo, 1 Rd\n")
	if err != nil || len(res) != 1 {
		t.Fatalf("extraction after missing-bin fallback = %v, %v", res, err)
	}
	if st := svc2.Stats(); st.Registry.SourceFallbacks != 1 {
		t.Fatalf("registry stats = %+v, want one source fallback", st.Registry)
	}
}

func TestRegistryQueryValidation(t *testing.T) {
	ctx := context.Background()

	// Without a registry, spanner references fail cleanly.
	bare := New(Config{})
	if _, err := bare.Extract(ctx, Query{Spanner: "x"}, "a"); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("no registry: %v", err)
	}
	if _, err := bare.Prewarm(); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("Prewarm without registry: %v", err)
	}

	svc := newRegistryService(t, t.TempDir())
	if _, err := svc.Extract(ctx, Query{Spanner: "missing"}, "a"); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("missing name: %v", err)
	}
	if _, err := svc.Extract(ctx, Query{Spanner: "../etc"}, "a"); !errors.Is(err, registry.ErrBadName) {
		t.Fatalf("traversal name: %v", err)
	}
	// Setting two query fields is rejected.
	if _, err := svc.Extract(ctx, Query{Spanner: "a", Expr: "b"}, "a"); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("two fields: %v", err)
	}
}

func TestDeleteSpannerDropsResolution(t *testing.T) {
	svc := newRegistryService(t, t.TempDir())
	man, _, err := svc.RegisterSpanner("tmp", `x{a*}b`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Extract(ctx, Query{Spanner: "tmp"}, "ab"); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteSpanner("tmp", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Extract(ctx, Query{Spanner: "tmp"}, "ab"); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
	if _, err := svc.Extract(ctx, Query{Spanner: man.Ref()}, "ab"); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("pinned after delete: %v", err)
	}
}
