package service

import (
	"errors"
	"fmt"
	"time"

	"spanners"
	"spanners/internal/obs"
	"spanners/internal/registry"
)

// This file is the service side of the persistent spanner registry:
// named lookup for queries that pin "name@version" instead of
// shipping an inline expression, startup pre-warming so a restarted
// process serves stored artifacts with zero compile-cache misses, and
// the mutating operations the HTTP layer exposes — routed through the
// service so the in-memory indexes stay coherent with the disk store.

// ErrNoRegistry is returned for registry operations on a service
// configured without one.
var ErrNoRegistry = errors.New("service: no registry configured")

// Registry returns the backing registry, or nil.
func (s *Service) Registry() *registry.Registry { return s.reg }

// install records a resolved named spanner in the in-memory indexes.
// markLatest moves the in-memory latest pointer — set only when the
// registry says this version is current, never for a pinned lookup of
// an older version. seedExpr additionally seeds the inline-expression
// LRU under the manifest's source — set only for spanners this
// process itself compiled from that source: a decoded artifact's
// embedded source string is unverified (nothing proves the program
// tables implement it), and keying the expression cache on it would
// let a crafted artifact poison unrelated inline queries.
func (s *Service) install(man registry.Manifest, sp *spanners.Spanner, markLatest, seedExpr bool) {
	s.namedMu.Lock()
	s.named[man.Ref()] = sp
	if markLatest {
		s.latest[man.Name] = man.Version
	}
	s.namedMu.Unlock()
	s.trackDFA(sp)
	if seedExpr && man.Source != "" && man.Kind == "" {
		s.spanners.put(exprKeyPrefix+man.Source, sp)
	}
}

// loadNamed materializes name@version from the registry: decode the
// stored artifact, or — when the artifact is unusable (corrupt,
// truncated, or its .bin file missing while the manifest survives) —
// rebuild from the manifest's source so storage damage degrades to a
// slower start instead of a failed request: RGX manifests recompile,
// algebra manifests replan their pinned expression. The returned
// fromSource flag reports which path produced the spanner.
func (s *Service) loadNamed(name, version string) (*spanners.Spanner, registry.Manifest, bool, error) {
	start := time.Now()
	defer func() { s.obs.stage(obs.StageRegistryLoad, time.Since(start)) }()
	sp, man, err := s.reg.Load(name, version)
	if err == nil {
		s.artifactLoads.Add(1)
		s.warmDFASidecar(sp, man)
		return sp, man, false, nil
	}
	man, merr := s.reg.Manifest(name, version)
	if merr != nil || man.Source == "" {
		return nil, man, false, err
	}
	var cerr error
	if man.Kind == registry.KindAlgebra {
		sp, cerr = s.AlgebraSpanner(man.Source)
	} else {
		sp, cerr = s.Spanner(man.Source)
	}
	if cerr != nil {
		return nil, man, false, fmt.Errorf("%v; rebuild-from-source fallback: %w", err, cerr)
	}
	s.fallbacks.Add(1)
	return sp, man, true, nil
}

// warmDFASidecar seeds sp's lazy-DFA cache from the registry's
// persisted sidecar, when one exists. Every failure mode — no
// sidecar, hostile bytes, a sidecar for a different program version —
// degrades to a cold cache: warming validates and recomputes
// everything it loads, so a bad sidecar can cost a little time but
// never a wrong result.
func (s *Service) warmDFASidecar(sp *spanners.Spanner, man registry.Manifest) {
	data, err := s.reg.DFAArtifact(man.Name, man.Version)
	if err != nil {
		return
	}
	start := time.Now()
	if _, err := sp.WarmDFA(data); err == nil {
		s.sidecarsLoaded.Add(1)
	}
	s.obs.stage(obs.StageDFAWarm, time.Since(start))
}

// SaveDFAs persists the warmed lazy-DFA cache of every resident named
// spanner as a registry sidecar, returning how many were written. A
// long-lived process calls it on graceful shutdown so the next start
// pre-warms not just the compiled programs but their determinized
// state spaces.
func (s *Service) SaveDFAs() (int, error) {
	if s.reg == nil {
		return 0, ErrNoRegistry
	}
	s.namedMu.Lock()
	refs := make(map[string]*spanners.Spanner, len(s.named))
	for ref, sp := range s.named {
		refs[ref] = sp
	}
	s.namedMu.Unlock()

	var errs []error
	saved := 0
	for ref, sp := range refs {
		name, version, err := registry.ParseRef(ref)
		if err != nil {
			continue
		}
		data, err := sp.DFAArtifact()
		if err != nil {
			continue // interpreted fallback: nothing to persist
		}
		if err := s.reg.SaveDFA(name, version, data); err != nil {
			errs = append(errs, fmt.Errorf("save DFA sidecar %s: %w", ref, err))
			continue
		}
		saved++
		s.sidecarsSaved.Add(1)
	}
	return saved, errors.Join(errs...)
}

// namedCall deduplicates concurrent cold lookups of one reference, in
// the spirit of the expression LRU's per-entry sync.Once: a burst of
// requests for the same not-yet-resident name decodes the artifact
// exactly once.
type namedCall struct {
	done chan struct{}
	sp   *spanners.Spanner
	err  error
}

// NamedSpanner resolves a registry reference — "name" for the latest
// version, "name@version" for a pinned one — to a ready spanner.
// Resolved artifacts stay resident, so repeated references cost one
// map lookup and never touch the compile pipeline.
func (s *Service) NamedSpanner(ref string) (*spanners.Spanner, error) {
	sp, _, err := s.namedSpannerTracked(ref)
	return sp, err
}

// namedSpannerTracked is NamedSpanner reporting whether this call hit
// the registry (cold load) rather than the resident index — the
// signal the observed compile path uses to label its span
// "registry-load" vs "cache-lookup".
func (s *Service) namedSpannerTracked(ref string) (*spanners.Spanner, bool, error) {
	if s.reg == nil {
		return nil, false, ErrNoRegistry
	}
	name, version, err := registry.ParseRef(ref)
	if err != nil {
		return nil, false, err
	}
	pinned := version != ""
	s.namedMu.Lock()
	if !pinned {
		version = s.latest[name] // may still be "", resolved from disk below
	}
	if version != "" {
		if sp, ok := s.named[name+"@"+version]; ok {
			s.namedMu.Unlock()
			s.namedHits.Add(1)
			return sp, false, nil
		}
	}
	// Cold: join an in-flight load of the same reference or start one.
	key := name + "@" + version
	if call, ok := s.loading[key]; ok {
		s.namedMu.Unlock()
		<-call.done
		return call.sp, false, call.err
	}
	call := &namedCall{done: make(chan struct{})}
	s.loading[key] = call
	s.namedMu.Unlock()

	sp, man, _, err := s.loadNamed(name, version)
	if err == nil {
		s.install(man, sp, !pinned, false)
	}
	call.sp, call.err = sp, err
	s.namedMu.Lock()
	delete(s.loading, key)
	s.namedMu.Unlock()
	close(call.done)
	return sp, true, err
}

// Prewarm loads the latest version of every registered spanner into
// the named index. It is called once at startup, before traffic:
// afterwards a pinned extraction is served with zero compile-cache
// misses. Entries whose artifacts fail to decode are recompiled from
// source (counted in SourceFallbacks); entries unusable even then are
// skipped and reported in the joined error, without aborting the rest
// of the warm-up.
func (s *Service) Prewarm() (int, error) {
	if s.reg == nil {
		return 0, ErrNoRegistry
	}
	mans, err := s.reg.List()
	if err != nil {
		return 0, err
	}
	var errs []error
	loaded := 0
	for _, man := range mans {
		sp, got, _, err := s.loadNamed(man.Name, man.Version)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.install(got, sp, true, false)
		s.prewarmed.Add(1)
		loaded++
	}
	return loaded, errors.Join(errs...)
}

// RegisterSpanner compiles source, persists it under name, and makes
// it immediately resolvable. The stored artifact is read back and
// decoded before the call returns, so registration also verifies the
// round trip. Because this process compiled the artifact from source
// itself, the expression cache is seeded too — inline queries for the
// same source become hits.
func (s *Service) RegisterSpanner(name, source string) (registry.Manifest, bool, error) {
	if s.reg == nil {
		return registry.Manifest{}, false, ErrNoRegistry
	}
	man, created, err := s.reg.Register(name, source)
	if err != nil {
		return registry.Manifest{}, false, err
	}
	sp, man, _, err := s.loadNamed(man.Name, man.Version)
	if err != nil {
		return man, created, err
	}
	s.install(man, sp, true, true)
	return man, created, nil
}

// DeleteSpanner removes name@version (or every version when version
// is empty) from the registry and the in-memory indexes.
func (s *Service) DeleteSpanner(name, version string) error {
	if s.reg == nil {
		return ErrNoRegistry
	}
	if err := s.reg.Delete(name, version); err != nil {
		return err
	}
	s.namedMu.Lock()
	defer s.namedMu.Unlock()
	if version == "" {
		for ref := range s.named {
			if n, _, err := registry.ParseRef(ref); err == nil && n == name {
				delete(s.named, ref)
			}
		}
		for ref := range s.leaves {
			if n, _, err := registry.ParseRef(ref); err == nil && n == name {
				delete(s.leaves, ref)
			}
		}
		delete(s.latest, name)
		return nil
	}
	delete(s.named, name+"@"+version)
	delete(s.leaves, name+"@"+version)
	if s.latest[name] == version {
		delete(s.latest, name) // re-resolved from disk on next lookup
	}
	return nil
}
