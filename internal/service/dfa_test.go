package service

import (
	"context"
	"strings"
	"testing"
)

// TestDFAStatsSurface asserts the dfa.* aggregate moves with request
// traffic: after serving a letter-heavy document twice, the tracked
// cache reports resident states and hits.
func TestDFAStatsSurface(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()
	q := Query{Expr: sellerExpr}
	doc := strings.Repeat("padding line before the rows\n", 4) + "Seller: Ana, ID7\n"
	for i := 0; i < 2; i++ {
		if _, err := svc.Extract(ctx, q, doc); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats().DFA
	if st.Caches != 1 {
		t.Fatalf("tracked caches = %d, want 1: %+v", st.Caches, st)
	}
	if st.States == 0 || st.Hits == 0 {
		t.Fatalf("dfa stats did not move with traffic: %+v", st)
	}
	if st.Truncated {
		t.Fatalf("one cache cannot truncate the index: %+v", st)
	}
}

// TestDFASidecarRoundTrip is the persistence story end to end:
// register, serve (warming the cache), SaveDFAs, then restart on the
// same directory and verify the pre-warm loads the sidecar and seeds
// determinized states before any traffic.
func TestDFASidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	if _, _, err := svc.RegisterSpanner("seller", sellerExpr); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	doc := "Seller: Ana, ID7\nBuyer: Bo, ID8, P1\n"
	if _, err := svc.Extract(ctx, Query{Spanner: "seller"}, doc); err != nil {
		t.Fatal(err)
	}
	saved, err := svc.SaveDFAs()
	if err != nil || saved != 1 {
		t.Fatalf("SaveDFAs = %d, %v", saved, err)
	}
	if got := svc.Stats().DFA.SidecarsSaved; got != 1 {
		t.Fatalf("sidecars_saved = %d, want 1", got)
	}

	// Restart: the pre-warm must load the sidecar.
	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 1 {
		t.Fatalf("Prewarm = %d, %v", n, err)
	}
	st := svc2.Stats().DFA
	if st.SidecarsLoaded != 1 {
		t.Fatalf("sidecars_loaded = %d, want 1: %+v", st.SidecarsLoaded, st)
	}
	if st.PrewarmedStates == 0 {
		t.Fatalf("restart seeded no determinized states: %+v", st)
	}

	// The warmed cache serves the same document without discovering
	// new states.
	before := svc2.Stats().DFA.States
	if _, err := svc2.Extract(ctx, Query{Spanner: "seller"}, doc); err != nil {
		t.Fatal(err)
	}
	if after := svc2.Stats().DFA.States; after != before {
		t.Fatalf("warmed cache still discovered states: %d → %d", before, after)
	}
}

// TestDFASidecarCorruptionDegradesToCold flips bytes in the stored
// sidecar and asserts the restart still serves correctly, just cold.
func TestDFASidecarCorruptionDegradesToCold(t *testing.T) {
	dir := t.TempDir()
	svc := newRegistryService(t, dir)
	man, _, err := svc.RegisterSpanner("seller", sellerExpr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	doc := "Seller: Ana, ID7\n"
	if _, err := svc.Extract(ctx, Query{Spanner: "seller"}, doc); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.SaveDFAs(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Registry().SaveDFA(man.Name, man.Version, []byte("garbage sidecar")); err != nil {
		t.Fatal(err)
	}

	svc2 := newRegistryService(t, dir)
	if n, err := svc2.Prewarm(); err != nil || n != 1 {
		t.Fatalf("Prewarm = %d, %v", n, err)
	}
	st := svc2.Stats().DFA
	if st.SidecarsLoaded != 0 || st.PrewarmedStates != 0 {
		t.Fatalf("corrupt sidecar should start cold: %+v", st)
	}
	out, err := svc2.Extract(ctx, Query{Spanner: "seller"}, doc)
	if err != nil || len(out) == 0 {
		t.Fatalf("cold-start extraction broken: %d results, %v", len(out), err)
	}
}
