package service

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"spanners"
)

const sellerExpr = `.*(Seller: x{[^,\n]*},[^\n]*\n).*`

const sellerDoc = "Seller: Anna, 12 Hill St\nSeller: Bob, 1 Main Rd\nBuyer: Carl\n"

// sequentialResults is the reference implementation: compile fresh,
// ExtractAll one document at a time.
func sequentialResults(t *testing.T, expr string, docs []string) [][]Result {
	t.Helper()
	sp, err := spanners.Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	out := make([][]Result, len(docs))
	for i, text := range docs {
		d := spanners.NewDocument(text)
		out[i] = []Result{}
		for _, m := range sp.ExtractAll(d) {
			out[i] = append(out[i], EncodeMapping(d, m))
		}
	}
	return out
}

func TestExtractBatchMatchesSequential(t *testing.T) {
	docs := []string{
		sellerDoc,
		"Seller: Zoe, 9 Elm Ct\n",
		"no sales here\n",
		"",
		strings.Repeat("Seller: Kim, 4 Oak Ln\n", 10),
	}
	want := sequentialResults(t, sellerExpr, docs)
	for _, workers := range []int{1, 2, 4, 16} {
		svc := New(Config{Workers: workers})
		got, err := svc.ExtractBatch(context.Background(), Query{Expr: sellerExpr}, docs)
		if err != nil {
			t.Fatalf("workers=%d: ExtractBatch: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch results differ from sequential ExtractAll\ngot:  %v\nwant: %v", workers, got, want)
		}
	}
}

func TestExtractBatchLimit(t *testing.T) {
	svc := New(Config{})
	got, err := svc.ExtractBatch(context.Background(), Query{Expr: sellerExpr, Limit: 1}, []string{sellerDoc})
	if err != nil {
		t.Fatalf("ExtractBatch: %v", err)
	}
	if len(got[0]) != 1 {
		t.Fatalf("limit 1: got %d results", len(got[0]))
	}
}

func TestExtractRule(t *testing.T) {
	svc := New(Config{})
	q := Query{Rule: `.*<x>.* && x.(ab*)`}
	got, err := svc.Extract(context.Background(), q, "abb")
	if err != nil {
		t.Fatalf("Extract(rule): %v", err)
	}
	if len(got) == 0 {
		t.Fatal("rule extraction returned no mappings")
	}
	for _, r := range got {
		sp, ok := r["x"]
		if !ok {
			t.Fatalf("mapping %v missing x", r)
		}
		if !strings.HasPrefix(sp.Content, "a") {
			t.Fatalf("x content %q does not satisfy x.(ab*)", sp.Content)
		}
	}
}

func TestBadQuery(t *testing.T) {
	svc := New(Config{})
	for _, q := range []Query{{}, {Expr: "a", Rule: "a && x.(a)"}} {
		if _, err := svc.ExtractBatch(context.Background(), q, []string{"a"}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("query %+v: err = %v, want ErrBadQuery", q, err)
		}
	}
	if _, err := svc.Extract(context.Background(), Query{Expr: "x{["}, "a"); err == nil {
		t.Fatal("malformed expression: want compile error")
	}
}

func TestCompileCaching(t *testing.T) {
	svc := New(Config{})
	docs := []string{"Seller: A, 1\n"}
	for i := 0; i < 3; i++ {
		if _, err := svc.ExtractBatch(context.Background(), Query{Expr: sellerExpr}, docs); err != nil {
			t.Fatalf("ExtractBatch #%d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.Spanners.Misses != 1 || st.Spanners.Hits != 2 {
		t.Fatalf("spanner cache = %+v, want 1 miss then 2 hits", st.Spanners)
	}
	if st.Emitted == 0 {
		t.Fatal("mappings_emitted stayed 0")
	}
	// One compilation happened: the engine-selection counters must
	// record exactly one sequential, compiled program.
	if st.Engine.SequentialSpanners != 1 || st.Engine.CompiledPrograms != 1 {
		t.Fatalf("engine stats = %+v, want 1 sequential compiled spanner", st.Engine)
	}
	if st.Engine.CompileNanos <= 0 {
		t.Fatalf("compile_ns_total = %d, want > 0", st.Engine.CompileNanos)
	}
}

// TestStreamDelivers checks that ExtractStream yields every mapping
// ExtractAll produces, in the same order.
func TestStreamDelivers(t *testing.T) {
	svc := New(Config{})
	want := sequentialResults(t, sellerExpr, []string{sellerDoc})[0]
	got := []Result{}
	err := svc.ExtractStream(context.Background(), Query{Expr: sellerExpr}, sellerDoc, func(r Result) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatalf("ExtractStream: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream results differ\ngot:  %v\nwant: %v", got, want)
	}
}

// bigDoc produces quadratically many mappings under x{a*}, enough
// that full enumeration takes macroscopic time.
func bigDoc() (Query, string) {
	return Query{Expr: `a*x{a*}a*`}, strings.Repeat("a", 250)
}

// TestStreamCancellationNoLeak cancels a stream mid-enumeration and
// verifies the producer goroutine exits.
func TestStreamCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	q, doc := bigDoc()
	svc := New(Config{})

	ctx, cancel := context.WithCancel(context.Background())
	out, errc := svc.StreamChan(ctx, q, doc)
	// Take a few results, then abandon the stream.
	for i := 0; i < 3; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("stream closed before 3 results")
		}
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("terminal error = %v, want context.Canceled", err)
	}
	for range out {
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines: %d before, %d after cancellation", before, after)
	}
	if st := svc.Stats(); st.InFlight != 0 {
		t.Fatalf("in_flight = %d after stream ended", st.InFlight)
	}
}

// TestBatchCancellation cancels mid-batch and checks the call returns
// the context error rather than hanging or returning partial data.
func TestBatchCancellation(t *testing.T) {
	q, doc := bigDoc()
	docs := make([]string, 32)
	for i := range docs {
		docs[i] = doc
	}
	svc := New(Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := svc.ExtractBatch(ctx, q, docs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled batch must not return partial results")
	}
	if st := svc.Stats(); st.InFlight != 0 {
		t.Fatalf("in_flight = %d after cancelled batch", st.InFlight)
	}
}

// TestStreamFirstResultBeforeCompletion bounds the time to first
// streamed result: it must arrive while full enumeration is still far
// from done.
func TestStreamFirstResultBeforeCompletion(t *testing.T) {
	q, doc := bigDoc()
	svc := New(Config{})

	startTotal := time.Now()
	total := 0
	if err := svc.ExtractStream(context.Background(), q, doc, func(Result) bool { total++; return true }); err != nil {
		t.Fatalf("full stream: %v", err)
	}
	fullTime := time.Since(startTotal)

	startFirst := time.Now()
	err := svc.ExtractStream(context.Background(), q, doc, func(Result) bool { return false })
	firstTime := time.Since(startFirst)
	if err != nil {
		t.Fatalf("first-result stream: %v", err)
	}
	if total < 1000 {
		t.Fatalf("expected a large output set, got %d mappings", total)
	}
	if firstTime > fullTime/2 {
		t.Fatalf("first result took %v, full enumeration %v: streaming is not incremental", firstTime, fullTime)
	}
}
