package service

import (
	"errors"
	"fmt"

	"spanners"
	"spanners/internal/algebra"
	"spanners/internal/registry"
)

// This file is the service side of the spanner algebra: queries whose
// "algebra" field composes registered spanners with union / project /
// join (Theorem 4.5) and difference (budgeted determinization) on the
// server. Compositions are cached in the
// same LRU as inline expressions — under a disjoint key space — keyed
// by the canonical expression with every leaf pinned to its resolved
// content-addressed version, so a cache entry can never change
// meaning when a name's latest pointer moves. Leaves are rebuilt from
// their manifests' sources (stored artifacts carry no automaton) into
// a dedicated resident index, bypassing the expression LRU entirely:
// algebra traffic neither pollutes nor misses the inline-expression
// cache.

// The spanner LRU is shared by inline expressions and composed
// algebra expressions. The key spaces carry distinct prefixes because
// a canonical algebra expression ("join(a@…,b@…)") is also a
// syntactically valid RGX — without the prefix, an inline query for
// that literal text would be served the composed spanner (or vice
// versa).
const (
	exprKeyPrefix    = "e\x00"
	algebraKeyPrefix = "a\x00"
)

// AlgebraStats summarizes the algebra subsystem: how many algebra
// queries were resolved, how they split into composed-spanner cache
// hits vs fresh compositions, the leaf traffic behind the
// compositions (leaf_builds compiled or replanned a manifest source,
// leaf_hits reused a resident leaf), and the planner's work across
// every fresh composition (rewrites fired, common subexpressions
// composed once, registered artifacts pre-composed at startup). Leaf
// work is deliberately not part of the expression-cache counters.
type AlgebraStats struct {
	Queries      uint64 `json:"queries"`
	CacheHits    uint64 `json:"cache_hits"`
	Compositions uint64 `json:"compositions"`
	LeafBuilds   uint64 `json:"leaf_builds"`
	LeafHits     uint64 `json:"leaf_hits"`
	Registered   uint64 `json:"registered"`
	Rewrites     uint64 `json:"rewrites"`
	CSEHits      uint64 `json:"cse_hits"`
	Precomposed  uint64 `json:"precomposed"`
}

// AlgebraSpanner resolves an algebra expression to a composed, ready
// spanner: parse, pin every leaf to its current version, and serve
// the composition from the LRU under the pinned canonical key —
// composing through the registry only on a miss. Errors are typed:
// algebra.ErrSyntax / ErrUnbound / ErrDepth / ErrCycle for bad
// expressions, registry.ErrNotFound for unknown leaves.
func (s *Service) AlgebraSpanner(expr string) (*spanners.Spanner, error) {
	sp, _, _, err := s.algebraSpannerTracked(expr)
	return sp, err
}

// algebraSpannerTracked is AlgebraSpanner reporting whether this call
// performed the composition, and — when it did — the plan, whose
// per-operator timings the observed compile path records.
func (s *Service) algebraSpannerTracked(expr string) (*spanners.Spanner, *algebra.Plan, bool, error) {
	if s.reg == nil {
		return nil, nil, false, ErrNoRegistry
	}
	s.algebraQueries.Add(1)
	return s.composeAlgebra(expr)
}

// composeAlgebra is the shared composition path behind algebra
// queries and startup pre-composition: pin, serve from the LRU under
// the pinned canonical key, compose through the registry on a miss.
func (s *Service) composeAlgebra(expr string) (*spanners.Spanner, *algebra.Plan, bool, error) {
	pinned, err := s.pinExpr(expr)
	if err != nil {
		return nil, nil, false, err
	}
	key := pinned.Canonical()
	var plan *algebra.Plan
	sp, err := s.spanners.get(algebraKeyPrefix+key, func() (*spanners.Spanner, error) {
		p, err := algebra.BuildWith(pinned, s.leafResolver(), s.algebraOpts())
		if err != nil {
			return nil, err
		}
		plan = p
		s.recordPlan(p)
		s.recordEngine(p.Spanner)
		return p.Spanner.WithAlgebraSource(key), nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	if plan != nil {
		s.algebraCompositions.Add(1)
	} else {
		s.algebraCacheHits.Add(1)
	}
	return sp, plan, plan != nil, nil
}

// algebraOpts is the planning policy every service composition runs
// under: optimizer on, difference budget from the configuration.
func (s *Service) algebraOpts() algebra.Options {
	return algebra.Options{Optimize: true, DifferenceBudget: s.cfg.DifferenceBudget}
}

// recordPlan counts one fresh plan's optimizer work into the stats
// and the per-rule counters.
func (s *Service) recordPlan(p *algebra.Plan) {
	s.algebraRewrites.Add(uint64(len(p.Rewrites)))
	s.algebraCSEHits.Add(uint64(p.CSEHits))
	for _, rw := range p.Rewrites {
		if c := s.algebraRuleFires[rw.Rule]; c != nil {
			c.Add(1)
		}
	}
}

// Precompose composes every registered algebra artifact into the
// spanner cache — the startup rung above Prewarm: where Prewarm
// decodes stored programs, Precompose re-plans each KindAlgebra
// manifest's pinned source, so the first query for a registered
// composition (and for any expression sharing its leaves) starts from
// a warm cache instead of paying the composition. Returns how many
// artifacts were composed; per-artifact failures are joined, and the
// rest still compose.
func (s *Service) Precompose() (int, error) {
	if s.reg == nil {
		return 0, ErrNoRegistry
	}
	mans, err := s.reg.List()
	if err != nil {
		return 0, err
	}
	var errs []error
	composed := 0
	for _, man := range mans {
		if man.Kind != registry.KindAlgebra {
			continue
		}
		if _, _, _, err := s.composeAlgebra(man.Source); err != nil {
			errs = append(errs, fmt.Errorf("precompose %s: %w", man.Ref(), err))
			continue
		}
		s.algebraPrecomposed.Add(1)
		composed++
	}
	return composed, errors.Join(errs...)
}

// RegisterAlgebra plans expr, persists the composed program under
// name as a first-class registry artifact of registry.KindAlgebra,
// and makes it immediately resolvable — both as a named query target
// and as a leaf of further algebra expressions. The manifest's source
// is the pinned canonical expression: content addressing freezes the
// leaves, so the stored text rebuilds the identical composition even
// after the leaves' latest pointers move on.
func (s *Service) RegisterAlgebra(name, expr string) (registry.Manifest, bool, error) {
	if s.reg == nil {
		return registry.Manifest{}, false, ErrNoRegistry
	}
	pinned, err := s.pinExpr(expr)
	if err != nil {
		return registry.Manifest{}, false, err
	}
	plan, err := algebra.BuildWith(pinned, s.leafResolver(), s.algebraOpts())
	if err != nil {
		return registry.Manifest{}, false, err
	}
	s.recordPlan(plan)
	if !plan.Spanner.Compiled() {
		return registry.Manifest{}, false, fmt.Errorf("%w: %s", algebra.ErrNotCompiled, plan.Pinned)
	}
	man, created, err := s.reg.RegisterCompiled(name, plan.Spanner.WithAlgebraSource(plan.Pinned))
	if err != nil {
		return registry.Manifest{}, false, err
	}
	s.algebraRegistered.Add(1)
	// Read the stored artifact back (verifying the round trip) for
	// the named index, and keep the automaton-bearing composition
	// resident so the new name is immediately usable as a leaf.
	sp, man, _, err := s.loadNamed(man.Name, man.Version)
	if err != nil {
		return man, created, err
	}
	s.install(man, sp, true, false)
	s.namedMu.Lock()
	s.leaves[man.Ref()] = plan.Spanner.WithAlgebraSource(plan.Pinned)
	s.namedMu.Unlock()
	return man, created, nil
}

// pinExpr parses an algebra expression and pins every leaf to its
// current version — the shared front half of AlgebraSpanner and
// RegisterAlgebra.
func (s *Service) pinExpr(expr string) (algebra.Expr, error) {
	node, err := algebra.Parse(expr)
	if err != nil {
		return nil, err
	}
	return algebra.Pin(node, s.latestVersion)
}

// latestVersion pins an unpinned leaf: the in-memory latest pointer
// when the name is known, the registry's latest file otherwise (the
// result is remembered, so steady-state pinning never touches disk).
func (s *Service) latestVersion(name string) (string, error) {
	s.namedMu.Lock()
	v := s.latest[name]
	s.namedMu.Unlock()
	if v != "" {
		return v, nil
	}
	man, err := s.reg.Manifest(name, "")
	if err != nil {
		return "", err
	}
	s.namedMu.Lock()
	if s.latest[name] == "" {
		s.latest[name] = man.Version
	}
	s.namedMu.Unlock()
	return man.Version, nil
}

// leafResolver builds the per-request resolver: resolution logic
// lives in algebra.RegistryResolver; the service grafts on its
// resident leaf index and counters. A named-index entry doubles as a
// leaf when it carries an automaton (a source-fallback recompile
// does; a decoded artifact does not).
func (s *Service) leafResolver() *algebra.RegistryResolver {
	return &algebra.RegistryResolver{
		Reg:  s.reg,
		Opts: s.algebraOpts(),
		Lookup: func(ref string) *spanners.Spanner {
			s.namedMu.Lock()
			sp := s.leaves[ref]
			if sp == nil {
				if named := s.named[ref]; named != nil && named.Automaton() != nil {
					sp = named
				}
			}
			s.namedMu.Unlock()
			if sp != nil {
				s.algebraLeafHits.Add(1)
			}
			return sp
		},
		Store: func(ref string, sp *spanners.Spanner) {
			s.namedMu.Lock()
			s.leaves[ref] = sp
			s.namedMu.Unlock()
		},
		OnBuild: func(registry.Manifest) { s.algebraLeafBuilds.Add(1) },
	}
}
