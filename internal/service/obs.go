package service

import (
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"spanners/internal/algebra"
	"spanners/internal/obs"
)

// Observability is the service's instrumentation hub: the trace
// recorder, the pipeline-stage and emission-delay histograms, the
// per-operator algebra timings, and the Prometheus registry that
// exposes all of them (plus the counter families derived from Stats).
// A nil *Observability disables everything — each recording helper is
// nil-safe, so the instrumented paths pay one pointer test when the
// service is built with DisableObservability.
type Observability struct {
	// Tracer retains the last-N request traces for /debug/trace.
	Tracer *obs.Tracer
	// StageDur is spand_extract_duration_seconds: per-stage pipeline
	// latency, labeled by the internal/obs stage taxonomy.
	StageDur *obs.HistogramVec
	// EmissionDelay is spand_stream_emission_delay_seconds: the
	// inter-mapping delay of streaming extractions — the paper's
	// polynomial-delay bound as a live distribution.
	EmissionDelay *obs.Histogram
	// AlgebraOpDur is spand_algebra_op_duration_seconds: composition
	// cost per algebra operator (leaf / union / join / project /
	// difference).
	AlgebraOpDur *obs.HistogramVec

	deadlineExpiries atomic.Uint64
	reg              *obs.Registry
}

// newObservability builds the hub and registers every metric family.
// svc is captured by the counter/gauge collectors, which snapshot
// Stats at scrape time.
func newObservability(svc *Service, traceRetention int) *Observability {
	o := &Observability{
		Tracer:        obs.NewTracer(traceRetention),
		StageDur:      obs.NewHistogramVec("stage", nil),
		EmissionDelay: obs.NewHistogram(nil),
		AlgebraOpDur:  obs.NewHistogramVec("op", nil),
		reg:           obs.NewRegistry(),
	}
	r := o.reg
	r.RegisterHistogramVec("spand_extract_duration_seconds",
		"Extraction pipeline latency per stage.", o.StageDur)
	r.RegisterHistogram("spand_stream_emission_delay_seconds",
		"Delay between consecutive streamed mappings (first sample is time-to-first-result).", o.EmissionDelay)
	r.RegisterHistogramVec("spand_algebra_op_duration_seconds",
		"Algebra plan composition cost per operator.", o.AlgebraOpDur)
	r.RegisterCounterFunc("spand_mappings_emitted_total",
		"Output mappings emitted across all extraction paths.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.emitted.Load())}}
		})
	r.RegisterGaugeFunc("spand_in_flight_requests",
		"Extractions currently in flight.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.inFlight.Load())}}
		})
	r.RegisterCounterFunc("spand_deadline_expiries_total",
		"Requests that hit the server-imposed deadline.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(o.deadlineExpiries.Load())}}
		})
	r.RegisterCounterFunc("spand_cache_events_total",
		"Compile-cache traffic by cache and event.", func() []obs.Sample {
			st := svc.Stats()
			out := make([]obs.Sample, 0, 6)
			for _, c := range []struct {
				name  string
				stats CacheStats
			}{{"spanner", st.Spanners}, {"rule", st.Rules}} {
				out = append(out,
					obs.Sample{Labels: []string{obs.L("cache", c.name), obs.L("event", "hit")}, Value: float64(c.stats.Hits)},
					obs.Sample{Labels: []string{obs.L("cache", c.name), obs.L("event", "miss")}, Value: float64(c.stats.Misses)},
					obs.Sample{Labels: []string{obs.L("cache", c.name), obs.L("event", "eviction")}, Value: float64(c.stats.Evictions)},
				)
			}
			return out
		})
	r.RegisterCounterFunc("spand_spanners_compiled_total",
		"Spanners compiled, by selected evaluation engine.", func() []obs.Sample {
			st := svc.Stats().Engine
			return []obs.Sample{
				{Labels: []string{obs.L("engine", "sequential")}, Value: float64(st.SequentialSpanners)},
				{Labels: []string{obs.L("engine", "fpt")}, Value: float64(st.FPTSpanners)},
			}
		})
	r.RegisterCounterFunc("spand_compile_seconds_total",
		"Cumulative spanner compilation wall time.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.compileNanos.Load()) / 1e9}}
		})
	r.RegisterGaugeFunc("spand_dfa_states",
		"Resident determinized states across all lazy-DFA caches.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().States)}}
		})
	r.RegisterCounterFunc("spand_dfa_transitions_total",
		"Lazy-DFA transition lookups by outcome.", func() []obs.Sample {
			st := svc.dfaStats()
			return []obs.Sample{
				{Labels: []string{obs.L("outcome", "hit")}, Value: float64(st.Hits)},
				{Labels: []string{obs.L("outcome", "miss")}, Value: float64(st.Misses)},
			}
		})
	r.RegisterCounterFunc("spand_dfa_prefilter_checks_total",
		"Required-literal prefilter scans by outcome (pruned documents did no automaton work).", func() []obs.Sample {
			st := svc.dfaStats()
			return []obs.Sample{
				{Labels: []string{obs.L("outcome", "pruned")}, Value: float64(st.PrefilterPrunes)},
				{Labels: []string{obs.L("outcome", "passed")}, Value: float64(st.PrefilterChecks - st.PrefilterPrunes)},
			}
		})
	r.RegisterCounterFunc("spand_dfa_candidate_skipped_runes_total",
		"Runes skipped by stop-byte candidate jumps inside DFA sweeps.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().CandidateSkippedRunes)}}
		})
	r.RegisterCounterFunc("spand_dfa_candidate_disables_total",
		"Sweeps whose density heuristic disabled candidate jumps.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().CandidateDisables)}}
		})
	r.RegisterGaugeFunc("spand_dfa_constrained_states",
		"Resident states across the per-mask constrained DFA families.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().ConstrainedStates)}}
		})
	r.RegisterCounterFunc("spand_dfa_constrained_segments_total",
		"Obligation-free segments swept by the constrained evaluator.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().ConstrainedSegments)}}
		})
	r.RegisterCounterFunc("spand_boundary_memo_lookups_total",
		"Boundary-emission memo lookups by outcome.", func() []obs.Sample {
			st := svc.dfaStats()
			return []obs.Sample{
				{Labels: []string{obs.L("outcome", "hit")}, Value: float64(st.BoundaryMemoHits)},
				{Labels: []string{obs.L("outcome", "miss")}, Value: float64(st.BoundaryMemoMisses)},
			}
		})
	r.RegisterGaugeFunc("spand_boundary_memo_entries",
		"Resident boundary-emission memo entries across tracked spanners.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.dfaStats().BoundaryMemoSize)}}
		})
	r.RegisterGaugeFunc("spand_docstore_bytes",
		"Bytes held by the document store (documents, journals, attached sessions).", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.docs.Stats().Bytes)}}
		})
	r.RegisterGaugeFunc("spand_docstore_documents",
		"Documents resident in the store.", func() []obs.Sample {
			return []obs.Sample{{Value: float64(svc.docs.Stats().Documents)}}
		})
	r.RegisterCounterFunc("spand_docstore_events_total",
		"Document store traffic by event.", func() []obs.Sample {
			st := svc.docs.Stats()
			return []obs.Sample{
				{Labels: []string{obs.L("event", "put")}, Value: float64(st.Puts)},
				{Labels: []string{obs.L("event", "splice")}, Value: float64(st.Splices)},
				{Labels: []string{obs.L("event", "hit")}, Value: float64(st.Hits)},
				{Labels: []string{obs.L("event", "miss")}, Value: float64(st.Misses)},
				{Labels: []string{obs.L("event", "eviction")}, Value: float64(st.Evictions)},
			}
		})
	r.RegisterCounterFunc("spand_incremental_extractions_total",
		"By-reference extractions by serving path (hit: cached result set; replay: journal catch-up; rebuild: full re-seed; full: non-incremental fallback).", func() []obs.Sample {
			st := svc.documentStats()
			return []obs.Sample{
				{Labels: []string{obs.L("path", "hit")}, Value: float64(st.IncrementalHits)},
				{Labels: []string{obs.L("path", "replay")}, Value: float64(st.IncrementalReplays)},
				{Labels: []string{obs.L("path", "rebuild")}, Value: float64(st.IncrementalRebuilds)},
				{Labels: []string{obs.L("path", "full")}, Value: float64(st.FullExtractions)},
			}
		})
	r.RegisterCounterFunc("spand_algebra_planner_rewrites_total",
		"Planner rewrite rule firings across fresh algebra compositions, by rule.", func() []obs.Sample {
			rules := algebra.RuleNames()
			out := make([]obs.Sample, 0, len(rules))
			for _, rule := range rules {
				out = append(out, obs.Sample{
					Labels: []string{obs.L("rule", rule)},
					Value:  float64(svc.algebraRuleFires[rule].Load()),
				})
			}
			return out
		})
	r.RegisterCounterFunc("spand_registry_loads_total",
		"Named-spanner resolutions by path.", func() []obs.Sample {
			st := svc.Stats().Registry
			return []obs.Sample{
				{Labels: []string{obs.L("path", "hit")}, Value: float64(st.NamedHits)},
				{Labels: []string{obs.L("path", "artifact")}, Value: float64(st.ArtifactLoads)},
				{Labels: []string{obs.L("path", "source-fallback")}, Value: float64(st.SourceFallbacks)},
			}
		})
	return o
}

// stage records one completed pipeline stage into the stage histogram.
func (o *Observability) stage(name string, d time.Duration) {
	if o != nil {
		o.StageDur.Observe(name, d)
	}
}

// NoteDeadlineExpiry counts one request that hit the server-imposed
// deadline (surfaced as spand_deadline_expiries_total).
func (o *Observability) NoteDeadlineExpiry() {
	if o != nil {
		o.deadlineExpiries.Add(1)
	}
}

// DeadlineExpiries returns the running deadline-expiry count.
func (o *Observability) DeadlineExpiries() uint64 {
	if o == nil {
		return 0
	}
	return o.deadlineExpiries.Load()
}

// WritePrometheus renders every registered metric family in the
// Prometheus text exposition format. A nil hub writes nothing.
func (o *Observability) WritePrometheus(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.reg.WritePrometheus(w)
}

// Observability returns the service's instrumentation hub, nil when
// the service was built with DisableObservability.
func (s *Service) Observability() *Observability { return s.obs }

// observerFor builds the StageObserver the engines report through:
// stage timings land in the service-wide histogram and (when t is
// non-nil) as spans on the request trace; emission delays land in the
// stream-delay histogram and the trace's per-request digest. Returns
// nil — disabling engine instrumentation entirely — when observability
// is off.
func (s *Service) observerFor(t *obs.Trace) *obs.StageObserver {
	o := s.obs
	if o == nil {
		return nil
	}
	return &obs.StageObserver{
		Stage: func(name string, d time.Duration) {
			o.StageDur.Observe(name, d)
			t.AddSpan(name, time.Now().Add(-d), d, "")
		},
		Delay: func(d time.Duration) {
			o.EmissionDelay.Observe(d)
			t.ObserveDelay(d)
		},
	}
}

// batchObserver is observerFor for one batch worker: no per-trace
// span recording or delay digest (a large batch would flood the trace
// with per-document spans — the batch itself gets one span). When the
// batch runs multiple workers the stage samples land in a
// goroutine-local histogram family that the caller absorbs into
// StageDur when the worker drains — per-document recording stays on
// core-local cache lines instead of ping-ponging the shared counters
// across the pool. A lone worker cannot contend, so it records
// straight into the shared family and skips the local allocation
// (nil vec). Returns nils when observability is off.
func (s *Service) batchObserver(workers int) (*obs.StageObserver, *obs.HistogramVec) {
	o := s.obs
	if o == nil {
		return nil, nil
	}
	if workers <= 1 {
		return &obs.StageObserver{Stage: o.StageDur.Observe}, nil
	}
	local := obs.NewHistogramVec("stage", nil)
	return &obs.StageObserver{Stage: local.Observe}, local
}

// recordOpCosts feeds a fresh algebra plan's per-operator timings into
// the operator histogram and, when a trace is active, onto the request
// trace as "algebra:<op>" spans.
func (s *Service) recordOpCosts(t *obs.Trace, costs []algebra.OpCost) {
	o := s.obs
	if o == nil {
		return
	}
	now := time.Now()
	for _, c := range costs {
		d := time.Duration(c.DurNs)
		o.AlgebraOpDur.Observe(c.Op, d)
		t.AddSpan(obs.AlgebraStage(c.Op), now.Add(-d), d, "")
	}
}

// traceDetail renders a small numeric annotation for a span.
func traceDetail(n int, unit string) string {
	return strconv.Itoa(n) + " " + unit
}
