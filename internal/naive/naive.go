// Package naive implements the denotational semantics of Table 2
// literally: ⟦γ⟧_d is computed by structural recursion on γ as a set
// of (span, mapping) pairs, with the Kleene star evaluated as a
// fixpoint. The implementation favours being an obviously correct
// executable specification over speed — it is worst-case exponential
// in the number of variables and quadratic-and-worse in |d| — and it
// is the oracle against which every optimized engine in this
// repository is property-tested.
package naive

import (
	"sort"

	"spanners/internal/rgx"
	"spanners/internal/span"
)

// Pair is one element of the inner semantics ⟦·⟧: a span of the
// document together with the mapping built while parsing it.
type Pair struct {
	Span    span.Span
	Mapping span.Mapping
}

func (p Pair) key() string { return p.Span.String() + "/" + p.Mapping.Key() }

// PairSet is a deduplicated set of pairs.
type PairSet struct {
	byKey map[string]Pair
}

// NewPairSet builds a set from the given pairs.
func NewPairSet(ps ...Pair) *PairSet {
	s := &PairSet{byKey: make(map[string]Pair, len(ps))}
	for _, p := range ps {
		s.Add(p)
	}
	return s
}

// Add inserts a pair, ignoring duplicates, and reports insertion.
func (s *PairSet) Add(p Pair) bool {
	k := p.key()
	if _, ok := s.byKey[k]; ok {
		return false
	}
	s.byKey[k] = p
	return true
}

// Len returns the number of distinct pairs.
func (s *PairSet) Len() int { return len(s.byKey) }

// Pairs returns the contents in a deterministic order.
func (s *PairSet) Pairs() []Pair {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Pair, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// Denote computes the inner semantics [γ]_d of Table 2: every span of
// d that γ can parse, paired with the mapping assembled on the way.
func Denote(n rgx.Node, d *span.Document) *PairSet {
	switch n := n.(type) {
	case rgx.Empty:
		// [ε]_d: every empty span, no bindings.
		out := NewPairSet()
		for i := 1; i <= d.Len()+1; i++ {
			out.Add(Pair{Span: span.Span{Start: i, End: i}, Mapping: span.Mapping{}})
		}
		return out

	case rgx.Class:
		// [a]_d: every single-letter span whose letter is in the class.
		out := NewPairSet()
		for i := 1; i <= d.Len(); i++ {
			if n.C.Contains(d.RuneAt(i)) {
				out.Add(Pair{Span: span.Span{Start: i, End: i + 1}, Mapping: span.Mapping{}})
			}
		}
		return out

	case rgx.Var:
		// [x{R}]_d: R's pairs whose mapping does not already bind x,
		// extended with x ↦ the parsed span.
		sub := Denote(n.Sub, d)
		out := NewPairSet()
		for _, p := range sub.Pairs() {
			if _, bound := p.Mapping[n.Name]; bound {
				continue
			}
			m := p.Mapping.Copy()
			m[n.Name] = p.Span
			out.Add(Pair{Span: p.Span, Mapping: m})
		}
		return out

	case rgx.Concat:
		acc := Denote(rgx.Empty{}, d)
		for _, part := range n.Parts {
			acc = concatPairs(acc, Denote(part, d))
		}
		return acc

	case rgx.Alt:
		out := NewPairSet()
		for _, part := range n.Parts {
			for _, p := range Denote(part, d).Pairs() {
				out.Add(p)
			}
		}
		return out

	case rgx.Star:
		// [R*]_d = [ε]_d ∪ [R]_d ∪ [R²]_d ∪ …, computed as the least
		// fixpoint of S ↦ S ∪ S·[R]_d, which exists because pairs
		// over a fixed document form a finite set.
		base := Denote(n.Sub, d)
		acc := Denote(rgx.Empty{}, d)
		for {
			grew := false
			for _, p := range concatPairs(acc, base).Pairs() {
				if acc.Add(p) {
					grew = true
				}
			}
			if !grew {
				return acc
			}
		}
	}
	panic("naive: unknown node type")
}

// concatPairs implements the concatenation rule of Table 2: adjacent
// spans whose mappings have disjoint domains combine into one pair.
func concatPairs(left, right *PairSet) *PairSet {
	out := NewPairSet()
	// Index the right-hand pairs by start position so concatenation
	// is not a full cross product.
	byStart := map[int][]Pair{}
	for _, p := range right.Pairs() {
		byStart[p.Span.Start] = append(byStart[p.Span.Start], p)
	}
	for _, l := range left.Pairs() {
		for _, r := range byStart[l.Span.End] {
			if !l.Mapping.DisjointDomain(r.Mapping) {
				continue
			}
			s, _ := l.Span.Concat(r.Span)
			m, _ := l.Mapping.Union(r.Mapping)
			out.Add(Pair{Span: s, Mapping: m})
		}
	}
	return out
}

// Eval computes the outer semantics ⟦γ⟧_d: the mappings of pairs whose
// span is the whole document (1, |d|+1).
func Eval(n rgx.Node, d *span.Document) *span.Set {
	whole := d.Whole()
	out := span.NewSet()
	for _, p := range Denote(n, d).Pairs() {
		if p.Span == whole {
			out.Add(p.Mapping)
		}
	}
	return out
}

// EvalAnywhere computes { µ | ∃s. (s, µ) ∈ [γ]_d }, the semantics of
// the rule conjunct form x.R when applied through [x{R}]_d
// (Section 3.3): the span is existentially quantified rather than
// pinned to the whole document.
func EvalAnywhere(n rgx.Node, d *span.Document) *span.Set {
	out := span.NewSet()
	for _, p := range Denote(n, d).Pairs() {
		out.Add(p.Mapping)
	}
	return out
}
