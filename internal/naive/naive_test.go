package naive

import (
	"testing"

	"spanners/internal/rgx"
	"spanners/internal/span"
)

// The document of Example 3.1.
var d36 = span.NewDocument("aaabbb")

func TestExample31Letter(t *testing.T) {
	// [a]_d contains precisely (1,2), (2,3), (3,4), each with the
	// empty mapping.
	got := Denote(rgx.MustParse("a"), d36)
	if got.Len() != 3 {
		t.Fatalf("Len = %d, want 3", got.Len())
	}
	for _, p := range got.Pairs() {
		if len(p.Mapping) != 0 {
			t.Errorf("letter pair has bindings: %v", p)
		}
		if d36.Content(p.Span) != "a" {
			t.Errorf("span %v has content %q", p.Span, d36.Content(p.Span))
		}
	}
}

func TestExample31Capture(t *testing.T) {
	// [x{a}]_d has the same three spans, now bound to x; but
	// ⟦x{a}⟧_d is empty because no span is the whole document.
	inner := Denote(rgx.MustParse("x{a}"), d36)
	if inner.Len() != 3 {
		t.Fatalf("inner Len = %d, want 3", inner.Len())
	}
	for _, p := range inner.Pairs() {
		if p.Mapping[span.Var("x")] != p.Span {
			t.Errorf("binding mismatch: %v", p)
		}
	}
	outer := Eval(rgx.MustParse("x{a}"), d36)
	if outer.Len() != 0 {
		t.Fatalf("outer Len = %d, want 0", outer.Len())
	}
}

func TestExample31Concat(t *testing.T) {
	// ⟦x{a*}·y{b*}⟧_d contains µ with µ(x) = (1,4), µ(y) = (4,7).
	got := Eval(rgx.MustParse("x{a*}y{b*}"), d36)
	want := span.Mapping{"x": span.Sp(1, 4), "y": span.Sp(4, 7)}
	if !got.Contains(want) {
		t.Fatalf("missing %v in %v", want, got.Mappings())
	}
	// It is the only full-document parse: x must swallow all the a's
	// and y all the b's.
	if got.Len() != 1 {
		t.Fatalf("Len = %d, want 1: %v", got.Len(), got.Mappings())
	}
}

func TestExample31SharedVariableConcat(t *testing.T) {
	// x{a*}·x{b*} can never output: the two sides both bind x.
	got := Eval(rgx.MustParse("x{a*}x{b*}"), d36)
	if got.Len() != 0 {
		t.Fatalf("Len = %d, want 0", got.Len())
	}
}

func TestExample31SelfNesting(t *testing.T) {
	// x{x{R}} never outputs mappings.
	got := Eval(rgx.MustParse("x{x{a*}}"), span.NewDocument("aa"))
	if got.Len() != 0 {
		t.Fatalf("Len = %d, want 0", got.Len())
	}
}

func TestExample31StarOverVariables(t *testing.T) {
	// e = (x{(a|b)*} | y{(a|b)*})* over aaabbb outputs, among others,
	// µ(y) = (1,4) with µ(x) = (4,7).
	got := Eval(rgx.MustParse("(x{(a|b)*}|y{(a|b)*})*"), d36)
	want := span.Mapping{"y": span.Sp(1, 4), "x": span.Sp(4, 7)}
	if !got.Contains(want) {
		t.Fatalf("missing %v", want)
	}
	// The empty mapping also appears: zero iterations cannot cover a
	// non-empty document, but one x-iteration spanning everything
	// yields a singleton; the truly empty mapping requires zero
	// iterations and is absent on a non-empty document.
	if got.Contains(span.Mapping{}) {
		t.Error("empty mapping should not appear on non-empty document")
	}
	// Every output is hierarchical (RGX property).
	if !got.Hierarchical() {
		t.Error("RGX output must be hierarchical")
	}
}

func TestEpsilonAndWholeDocument(t *testing.T) {
	d := span.NewDocument("")
	got := Eval(rgx.MustParse(""), d)
	if got.Len() != 1 || !got.Contains(span.Mapping{}) {
		t.Fatalf("ε on empty document = %v", got.Mappings())
	}
	got = Eval(rgx.MustParse("a"), d)
	if got.Len() != 0 {
		t.Fatal("letter cannot match empty document")
	}
}

func TestRegularExpressionBooleanReading(t *testing.T) {
	// Variable-free RGX acts as TRUE ({∅}) / FALSE (∅) on documents.
	d := span.NewDocument("abab")
	if got := Eval(rgx.MustParse("(ab)*"), d); got.Len() != 1 || !got.Contains(span.Mapping{}) {
		t.Errorf("match = %v", got.Mappings())
	}
	if got := Eval(rgx.MustParse("(ba)*"), d); got.Len() != 0 {
		t.Errorf("non-match = %v", got.Mappings())
	}
}

func TestOptionalExtraction(t *testing.T) {
	// The Section 3.1 pattern: extract x always, y only when present.
	// Document rows: "s:n,t\n" has tax t, "s:n\n" does not.
	e := rgx.MustParse("s:x{[^,\\n]*}(,y{[^\\n]*}|)\\n")
	withTax := Eval(e, span.NewDocument("s:ab,99\n"))
	if !withTax.Contains(span.Mapping{"x": span.Sp(3, 5), "y": span.Sp(6, 8)}) {
		t.Errorf("withTax = %v", withTax.Mappings())
	}
	noTax := Eval(e, span.NewDocument("s:ab\n"))
	if !noTax.Contains(span.Mapping{"x": span.Sp(3, 5)}) {
		t.Errorf("noTax = %v", noTax.Mappings())
	}
	// The two outputs have different domains: this is exactly what
	// relations cannot represent and mappings can.
	for _, m := range noTax.Mappings() {
		if _, ok := m[span.Var("y")]; ok {
			t.Errorf("y must be unassigned on the tax-free row, got %v", m)
		}
	}
}

func TestStarFixpointTerminates(t *testing.T) {
	// (a|aa)* has many overlapping parses; the fixpoint must still
	// terminate and find the whole-document match.
	d := span.NewDocument("aaaaa")
	got := Eval(rgx.MustParse("(a|aa)*"), d)
	if got.Len() != 1 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestEvalAnywhere(t *testing.T) {
	// EvalAnywhere existentially quantifies the span: x{a} anywhere
	// in aaabbb yields three mappings.
	got := EvalAnywhere(rgx.MustParse("x{a}"), d36)
	if got.Len() != 3 {
		t.Fatalf("Len = %d, want 3", got.Len())
	}
}

func TestDenoteClassPredicate(t *testing.T) {
	d := span.NewDocument("a1b2")
	got := Denote(rgx.MustParse("[\\d]"), d)
	if got.Len() != 2 {
		t.Fatalf("Len = %d, want 2", got.Len())
	}
	for _, p := range got.Pairs() {
		c := d.Content(p.Span)
		if c != "1" && c != "2" {
			t.Errorf("unexpected match %q", c)
		}
	}
}

func TestPairSetDedup(t *testing.T) {
	s := NewPairSet()
	p := Pair{Span: span.Sp(1, 2), Mapping: span.Mapping{"x": span.Sp(1, 2)}}
	if !s.Add(p) || s.Add(p) {
		t.Error("dedup broken")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}
