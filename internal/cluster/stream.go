package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"spanners/client"
)

// handleStream proxies one NDJSON streaming extraction to a shard,
// forwarding each mapping line verbatim and flushing it immediately —
// the gate adds a network hop, not a buffer, so the client still
// observes the enumerator's polynomial delay end to end.
//
// Failover happens only before the stream commits: a shard that
// cannot be reached, answers an error, or sits on its headers past
// the per-attempt timeout is abandoned for the next healthy shard
// with backoff (nothing has been written yet, so the retry is
// invisible). Once bytes flow, a dying shard aborts the downstream
// connection instead of ending the body cleanly — a truncated stream
// must never read as a complete result set.
func (g *Gate) handleStream(w http.ResponseWriter, r *http.Request) {
	var req client.StreamRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	ctx := r.Context()
	var owner *shard
	if req.DocID != "" {
		owner = g.owner(req.DocID)
		if owner.open.Load() {
			writeUpstream(w, fmt.Errorf("%w: document owner %s circuit open", errNoShards, owner.name()))
			return
		}
	}
	tried := map[*shard]bool{}
	var lastErr error
	for attempt := 0; ; attempt++ {
		target := owner
		if target == nil {
			target = g.pick(tried, attempt)
		}
		if target == nil {
			if lastErr != nil {
				writeUpstream(w, fmt.Errorf("%w (last attempt: %v)", errNoShards, lastErr))
			} else {
				writeUpstream(w, errNoShards)
			}
			return
		}
		err := g.streamFrom(ctx, w, target, req)
		switch {
		case err == nil:
			return
		case errors.Is(err, errStreamCommitted):
			// Bytes already reached the client: sever the connection so
			// truncation is visible, exactly like a single spand whose
			// enumeration died mid-stream.
			g.log.Warn("stream died after commit", "shard", target.name(), "error", errors.Unwrap(err))
			panic(http.ErrAbortHandler)
		case !g.retryable(err) || ctx.Err() != nil:
			writeUpstream(w, err)
			return
		}
		lastErr = err
		tried[target] = true
		if attempt >= g.retries {
			if !isTyped(err) {
				err = fmt.Errorf("%w (retries exhausted: %v)", errNoShards, err)
			}
			writeUpstream(w, err)
			return
		}
		g.counters.retries.Add(1)
		if err := g.backoff(ctx, attempt); err != nil {
			writeUpstream(w, err)
			return
		}
	}
}

// errStreamCommitted wraps a failure that happened after response
// bytes were already written downstream — past the failover horizon.
var errStreamCommitted = errors.New("stream failed after commit")

// streamFrom runs one streaming attempt against sh. The per-attempt
// timeout covers connecting and receiving response headers; once the
// upstream stream exists the only deadline left is the caller's. Each
// forwarded line is flushed before the next read, so time to first
// byte is the shard's, not a buffer's.
func (g *Gate) streamFrom(ctx context.Context, w http.ResponseWriter, sh *shard, req client.StreamRequest) error {
	// The stream must outlive the per-attempt window, but a shard
	// sitting on its headers must not stall failover: cancel manually
	// on a headers timer instead of a context deadline.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var timedOut atomic.Bool
	var headerTimer *time.Timer
	if g.attemptTimeout > 0 {
		headerTimer = time.AfterFunc(g.attemptTimeout, func() {
			timedOut.Store(true)
			cancel()
		})
	}
	st, err := sh.c.ExtractStream(sctx, req)
	if headerTimer != nil {
		headerTimer.Stop()
	}
	if err == nil && timedOut.Load() {
		// The timer fired in the instant the headers landed: sctx is
		// canceled and the stream is doomed — treat the attempt as the
		// timeout it effectively was, before committing anything.
		st.Close()
		err = fmt.Errorf("shard %s: no response headers within %v: %w",
			sh.name(), g.attemptTimeout, context.DeadlineExceeded)
	}
	if err != nil {
		switch {
		case isTyped(err):
			var ce *client.Error
			errors.As(err, &ce)
			if ce.Status < 500 {
				sh.note(outcomeClientError)
			} else {
				sh.note(outcomeError)
			}
			sh.recordSuccess()
		case ctx.Err() != nil:
			return context.Cause(ctx)
		case timedOut.Load():
			sh.note(outcomeTimeout)
			sh.recordFailure(g.failThreshold)
			err = fmt.Errorf("shard %s: no response headers within %v: %w",
				sh.name(), g.attemptTimeout, context.DeadlineExceeded)
		default:
			sh.note(outcomeError)
			sh.recordFailure(g.failThreshold)
		}
		return err
	}
	defer st.Close()
	sh.recordSuccess()

	// Headers are in hand: commit the NDJSON response and forward
	// line by line, flushing each one through.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	first := true
	start := time.Now()
	for {
		line, err := st.NextRaw()
		if err != nil {
			if errors.Is(err, io.EOF) {
				sh.note(outcomeOK)
				return nil
			}
			sh.note(outcomeError)
			sh.recordFailure(g.failThreshold)
			return fmt.Errorf("%w: shard %s: %v", errStreamCommitted, sh.name(), err)
		}
		if first {
			g.ttfb.Observe(time.Since(start))
			first = false
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return fmt.Errorf("%w: downstream write: %v", errStreamCommitted, err)
		}
		if flusher != nil {
			flusher.Flush()
		}
		g.counters.streamedLines.Add(1)
	}
}
