package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spanners/client"
)

// TestAdmissionShedding: with the in-flight cap saturated, the gate
// sheds immediately with 503 "overloaded" and Retry-After instead of
// queueing the fan-out.
func TestAdmissionShedding(t *testing.T) {
	slow := &fakeShard{extractDelay: 600 * time.Millisecond}
	ts := bootFake(t, slow)
	g, gate := bootGate(t, Options{ProbeInterval: -1, MaxInFlight: 1}, ts.URL)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": "x{a}", "docs": []string{"slow"}})
		drainBody(resp)
	}()
	waitFor(t, time.Second, func() bool { return g.Stats().InFlight == 1 })

	resp := postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": "x{a}", "docs": []string{"shed me"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var env client.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	if env.Err.Code != client.CodeOverloaded {
		t.Fatalf("code %q, want %q", env.Err.Code, client.CodeOverloaded)
	}
	wg.Wait()
	if g.Stats().Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// TestSingleFlightCoalescing: concurrent identical (query, document)
// units run upstream once; every caller gets the leader's result.
func TestSingleFlightCoalescing(t *testing.T) {
	slow := &fakeShard{extractDelay: 300 * time.Millisecond}
	ts := bootFake(t, slow)
	g, gate := bootGate(t, Options{ProbeInterval: -1}, ts.URL)

	req := map[string]any{"expr": "x{a}", "docs": []string{"same doc"}}
	const callers = 4
	bodies := make([]string, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, gate.URL+"/v1/extract", req)
			defer resp.Body.Close()
			var out struct {
				Results json.RawMessage `json:"results"`
			}
			json.NewDecoder(resp.Body).Decode(&out)
			bodies[i] = string(out.Results)
		}(i)
	}
	wg.Wait()
	if n := slow.extracts.Load(); n != 1 {
		t.Fatalf("upstream saw %d extract calls for %d identical callers, want 1", n, callers)
	}
	for i := 1; i < callers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("caller %d diverged: %q vs %q", i, bodies[i], bodies[0])
		}
	}
	if st := g.Stats(); st.Coalesced != callers-1 {
		t.Fatalf("coalesced counter %d, want %d", st.Coalesced, callers-1)
	}

	// Distinct documents do NOT coalesce.
	slow.extracts.Store(0)
	var wg2 sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			resp := postJSON(t, gate.URL+"/v1/extract",
				map[string]any{"expr": "x{a}", "docs": []string{fmt.Sprintf("doc %d", i)}})
			drainBody(resp)
		}(i)
	}
	wg2.Wait()
	if n := slow.extracts.Load(); n != 2 {
		t.Fatalf("distinct docs coalesced: %d upstream calls, want 2", n)
	}
}

// TestDuplicateDocsInOneBatch: duplicates inside a single batch
// coalesce too, and the merged response still has one result per
// input position.
func TestDuplicateDocsInOneBatch(t *testing.T) {
	shards := bootShards(t, 2)
	g, gate := bootGate(t, Options{ProbeInterval: -1}, shards[0].URL, shards[1].URL)

	doc := "Seller: Anna, 12 Hill St\n"
	req := map[string]any{"expr": sellerExpr, "docs": []string{doc, doc, doc}}
	got := rawResults(t, gate.URL, req)
	want := rawResults(t, bootShards(t, 1)[0].URL, req)
	if string(got) != string(want) {
		t.Fatalf("duplicate-doc batch diverges:\n gate: %s\n one:  %s", got, want)
	}
	if g.Stats().Coalesced == 0 {
		t.Fatal("in-batch duplicates did not coalesce")
	}
}

// TestRegistryBroadcast: a registry write through the gate lands on
// every shard — the invariant that keeps routing stateless — and a
// delete removes it everywhere.
func TestRegistryBroadcast(t *testing.T) {
	shards := bootShards(t, 3)
	_, gate := bootGate(t, Options{ProbeInterval: -1},
		shards[0].URL, shards[1].URL, shards[2].URL)

	cg, err := client.New(gate.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	man, created, err := cg.RegisterSpanner(ctx, "bcast", "x{ab}.*")
	if err != nil || !created {
		t.Fatalf("register via gate: created=%v err=%v", created, err)
	}
	for i, sh := range shards {
		cs, err := client.New(sh.URL)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.GetManifest(ctx, "bcast", "")
		if err != nil {
			t.Fatalf("shard %d missing broadcast artifact: %v", i, err)
		}
		if got.Version != man.Version {
			t.Fatalf("shard %d version %q, want %q (content addressing must agree)", i, got.Version, man.Version)
		}
	}
	if err := cg.DeleteSpanner(ctx, "bcast", ""); err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		cs, _ := client.New(sh.URL)
		if _, err := cs.GetManifest(ctx, "bcast", ""); !errors.Is(err, client.ErrNotFound) {
			t.Fatalf("shard %d still has deleted artifact: %v", i, err)
		}
	}

	// Reads through the gate serve from any shard.
	if _, _, err := cg.RegisterSpanner(ctx, "readback", "y{cd}.*"); err != nil {
		t.Fatal(err)
	}
	mans, err := cg.ListManifests(ctx)
	if err != nil || len(mans) != 1 || mans[0].Name != "readback" {
		t.Fatalf("list via gate: %+v err=%v", mans, err)
	}
}

// TestMetricsExposition: the gate's Prometheus surface carries every
// spand_gate_* family with HELP/TYPE, and the default /v1/metrics is
// the JSON stats snapshot.
func TestMetricsExposition(t *testing.T) {
	shards := bootShards(t, 2)
	_, gate := bootGate(t, Options{ProbeInterval: -1}, shards[0].URL, shards[1].URL)

	// Drive one batch and one stream so counters move.
	drainBody(postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": sellerExpr, "docs": corpus(4)}))
	resp := postJSON(t, gate.URL+"/v1/extract/stream", map[string]any{"expr": sellerExpr, "doc": corpus(1)[0]})
	drainBody(resp)

	resp, err := http.Get(gate.URL + "/v1/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, fam := range []string{
		"spand_gate_shard_requests_total",
		"spand_gate_fanout_duration_seconds",
		"spand_gate_stream_ttfb_seconds",
		"spand_gate_coalesced_total",
		"spand_gate_shed_total",
		"spand_gate_retries_total",
		"spand_gate_streamed_lines_total",
		"spand_gate_circuit_opens_total",
		"spand_gate_in_flight",
		"spand_gate_healthy_shards",
	} {
		if !strings.Contains(text, "# HELP "+fam+" ") || !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Fatalf("exposition missing family %s:\n%s", fam, text)
		}
	}
	if !strings.Contains(text, `outcome="ok"`) || !strings.Contains(text, `shard="`) {
		t.Fatal("shard request family missing its labels")
	}

	var st Stats
	resp2, err := http.Get(gate.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 || st.StreamedLines == 0 {
		t.Fatalf("JSON stats: %+v", st)
	}
}

// TestOwnerDownDocuments: a document whose owner shard's circuit is
// open answers 503 unavailable — never silently re-homed.
func TestOwnerDownDocuments(t *testing.T) {
	flappy := &fakeShard{}
	flappy.down.Store(true)
	flappyTS := bootFake(t, flappy)
	healthy := bootShards(t, 1)[0]
	g, gate := bootGate(t, Options{
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
	}, flappyTS.URL, healthy.URL)
	waitFor(t, time.Second, func() bool { return g.Stats().Healthy == 1 })

	// Find an ID owned by the (dead) first shard.
	var deadOwned string
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("probe-%d", i)
		if g.owner(id) == g.shards[0] {
			deadOwned = id
			break
		}
	}
	if deadOwned == "" {
		t.Fatal("no probe ID hashed to shard 0")
	}
	cg, err := client.New(gate.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = cg.PutDocument(context.Background(), deadOwned, "text")
	var ce *client.Error
	if !isClientErr(err, &ce) || ce.Status != http.StatusServiceUnavailable || ce.Code != client.CodeUnavailable {
		t.Fatalf("put to dead owner: %v", err)
	}
	if ce.RetryAfter == 0 {
		t.Fatal("owner-down response missing Retry-After")
	}
}

// TestEmptyBatchValidatesQuery: a batch with no documents still
// validates the query against a shard, answering 400 on syntax errors
// and an empty result set otherwise — like a single spand.
func TestEmptyBatchValidatesQuery(t *testing.T) {
	shards := bootShards(t, 2)
	_, gate := bootGate(t, Options{ProbeInterval: -1}, shards[0].URL, shards[1].URL)

	resp := postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": "x{"})
	var env client.ErrorEnvelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || env.Err.Code != client.CodeSyntax {
		t.Fatalf("empty-batch syntax error: status %d code %q", resp.StatusCode, env.Err.Code)
	}

	resp = postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": "x{a}"})
	defer resp.Body.Close()
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 0 {
		t.Fatalf("empty-batch OK path: status %d results %v", resp.StatusCode, out.Results)
	}
}
