package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"spanners/client"
)

// shard is one spand backend plus its circuit-breaker state and
// per-outcome request counters.
type shard struct {
	c *client.Client

	// open is the circuit: true = the shard is excluded from routing.
	// It opens after failThreshold consecutive failures (probe or
	// request transport errors) and closes on the next success —
	// background probes keep running against open shards, so recovery
	// never needs traffic.
	open  atomic.Bool
	fails atomic.Int32

	// outcomes counts upstream requests by result class for
	// spand_gate_shard_requests_total{shard,outcome}.
	outcomes [outcomeCount]atomic.Uint64
	// opened counts circuit-open transitions.
	opened atomic.Uint64
}

func newShard(c *client.Client) *shard {
	return &shard{c: c}
}

// name is the shard's metric label: its base URL.
func (sh *shard) name() string { return sh.c.BaseURL() }

// outcome classes for shard requests.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeClientError
	outcomeError
	outcomeTimeout
	outcomeCount
)

// outcomeNames are the label values, index-aligned with the outcome
// constants.
var outcomeNames = [outcomeCount]string{"ok", "client_error", "error", "timeout"}

// note records one upstream request's outcome on the shard counters.
func (sh *shard) note(o outcome) { sh.outcomes[o].Add(1) }

// recordFailure counts one transport-class failure toward the
// breaker, opening the circuit at the threshold. Typed HTTP errors
// (the shard answered, the request was just bad) never come here —
// an unhealthy query must not mark a healthy shard down.
func (sh *shard) recordFailure(threshold int) {
	if int(sh.fails.Add(1)) >= threshold {
		if sh.open.CompareAndSwap(false, true) {
			sh.opened.Add(1)
		}
	}
}

// recordSuccess resets the breaker and closes the circuit.
func (sh *shard) recordSuccess() {
	sh.fails.Store(0)
	sh.open.Store(false)
}

// probeLoop health-checks every shard each interval until ctx ends.
// Probes run concurrently with a per-probe timeout so one hung shard
// cannot delay the sweep past its period.
func (g *Gate) probeLoop(ctx context.Context, interval time.Duration) {
	defer close(g.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		g.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (g *Gate) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.probe(ctx, sh)
		}()
	}
	wg.Wait()
}

// probe checks one shard's /v1/healthz and feeds the breaker.
func (g *Gate) probe(ctx context.Context, sh *shard) {
	pctx, cancel := g.attemptCtx(ctx)
	defer cancel()
	_, err := sh.c.Healthz(pctx)
	if ctx.Err() != nil {
		return // shutting down, not a verdict on the shard
	}
	if err != nil {
		wasOpen := sh.open.Load()
		sh.recordFailure(g.failThreshold)
		if !wasOpen && sh.open.Load() {
			g.log.Warn("shard circuit opened",
				"shard", sh.name(), "consecutive_failures", sh.fails.Load(), "error", err)
		}
		return
	}
	if sh.open.Load() {
		g.log.Info("shard circuit closed", "shard", sh.name())
	}
	sh.recordSuccess()
}
