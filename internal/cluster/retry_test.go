package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spanners/client"
)

// fakeShard is a scriptable spand stand-in: healthz always answers ok
// (unless downed), extract answers one empty result array per
// document after an optional delay, and the down flag severs
// connections at the transport level — what a crashed process looks
// like to the gate.
type fakeShard struct {
	extractDelay time.Duration
	down         atomic.Bool
	extracts     atomic.Int64
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			panic(http.ErrAbortHandler)
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/extract", func(w http.ResponseWriter, r *http.Request) {
		f.extracts.Add(1)
		if f.down.Load() {
			panic(http.ErrAbortHandler)
		}
		if f.extractDelay > 0 {
			time.Sleep(f.extractDelay)
		}
		var req struct {
			Docs   []string `json:"docs"`
			DocIDs []string `json:"doc_ids"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		results := make([][]struct{}, len(req.Docs)+len(req.DocIDs))
		for i := range results {
			results[i] = []struct{}{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"results": results, "stats": map[string]any{}})
	})
	return mux
}

func bootFake(t *testing.T, f *fakeShard) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	return ts
}

// deadServer returns a URL nothing listens on.
func deadServer(t *testing.T) string {
	t.Helper()
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	return url
}

// TestRetryShardDownAtConnect: one of three shards refuses
// connections; a scattered batch still completes on the survivors and
// the retry counter moves.
func TestRetryShardDownAtConnect(t *testing.T) {
	shards := bootShards(t, 2)
	g, gate := bootGate(t, Options{ProbeInterval: -1, Retries: 3},
		shards[0].URL, deadServer(t), shards[1].URL)

	req := map[string]any{"expr": sellerExpr, "docs": corpus(9)}
	got := rawResults(t, gate.URL, req)
	want := rawResults(t, bootShards(t, 1)[0].URL, req)
	if string(got) != string(want) {
		t.Fatalf("results diverge after failover:\n gate: %s\n one:  %s", got, want)
	}
	st := g.Stats()
	if st.Retries == 0 {
		t.Fatalf("expected retries after a dead shard, stats: %+v", st)
	}
	var deadErrors uint64
	for _, sh := range st.Shards {
		if sh.Requests["error"] > 0 {
			deadErrors += sh.Requests["error"]
		}
	}
	if deadErrors == 0 {
		t.Fatalf("dead shard recorded no error outcomes: %+v", st.Shards)
	}
}

// TestAllShardsDown503: with every shard unreachable the batch
// answers the 503 envelope, code "unavailable", with a Retry-After
// hint — the matrix's terminal row.
func TestAllShardsDown503(t *testing.T) {
	_, gate := bootGate(t, Options{ProbeInterval: -1, Retries: 1},
		deadServer(t), deadServer(t))
	resp := postJSON(t, gate.URL+"/v1/extract", map[string]any{"expr": "x{a}", "docs": []string{"a"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("missing Retry-After on all-shards-down 503")
	}
	var env client.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != client.CodeUnavailable {
		t.Fatalf("code %q, want %q", env.Err.Code, client.CodeUnavailable)
	}
}

// TestSlowShardAttemptTimeout: a shard that sits on a batch past the
// per-attempt deadline is abandoned for a healthy shard; the timeout
// outcome lands on its counters.
func TestSlowShardAttemptTimeout(t *testing.T) {
	slow := &fakeShard{extractDelay: 2 * time.Second}
	slowTS := bootFake(t, slow)
	healthy := bootShards(t, 1)[0]
	g, gate := bootGate(t, Options{
		ProbeInterval:  -1,
		AttemptTimeout: 150 * time.Millisecond,
		Retries:        3,
	}, slowTS.URL, healthy.URL)

	// Two docs scatter one to each shard; the slow shard's chunk must
	// fail over to the healthy one within the attempt budget.
	start := time.Now()
	req := map[string]any{"expr": sellerExpr, "docs": corpus(2)}
	got := rawResults(t, gate.URL, req)
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("batch took %v; failover should beat the slow shard's 2s", elapsed)
	}
	want := rawResults(t, bootShards(t, 1)[0].URL, req)
	if string(got) != string(want) {
		t.Fatalf("results diverge after timeout failover:\n gate: %s\n one:  %s", got, want)
	}
	var timeouts uint64
	for _, sh := range g.Stats().Shards {
		timeouts += sh.Requests["timeout"]
	}
	if timeouts == 0 {
		t.Fatalf("no timeout outcome recorded: %+v", g.Stats().Shards)
	}
}

// TestCircuitBreaker: consecutive failures open a shard's circuit
// (visible in healthz), probes keep watching it, and recovery closes
// the circuit without traffic.
func TestCircuitBreaker(t *testing.T) {
	flappy := &fakeShard{}
	flappy.down.Store(true)
	flappyTS := bootFake(t, flappy)
	steady := bootShards(t, 1)[0]
	g, gate := bootGate(t, Options{
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
	}, flappyTS.URL, steady.URL)

	waitFor(t, time.Second, func() bool { return g.Stats().Healthy == 1 })

	// Degraded is visible on the gate's healthz.
	resp, err := http.Get(gate.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if hz.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", hz.Status)
	}

	// Recovery: the probe closes the circuit with no request traffic.
	flappy.down.Store(false)
	waitFor(t, time.Second, func() bool { return g.Stats().Healthy == 2 })

	var opens uint64
	for _, sh := range g.Stats().Shards {
		opens += sh.CircuitOpens
	}
	if opens == 0 {
		t.Fatal("no circuit-open transition recorded")
	}
}

func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// drainBody is a tiny helper for tests that only care about status.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
