package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"spanners/client"
)

// ownedID returns a document ID that hashes to the given shard index,
// so tests can aim document traffic at a specific owner.
func ownedID(t *testing.T, g *Gate, idx int) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		id := fmt.Sprintf("doc-%d", i)
		if g.owner(id) == g.shards[idx] {
			return id
		}
	}
	t.Fatal("no ID found for shard", idx)
	return ""
}

// Document CRUD through the gate proxies to the owner shard: create,
// read, splice, extract by reference, stream by reference, delete —
// with the owner's typed answers passing through verbatim.
func TestDocumentProxyLifecycle(t *testing.T) {
	shards := bootShards(t, 2)
	g, ts := bootGate(t, Options{ProbeInterval: -1}, shards[0].URL, shards[1].URL)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id := ownedID(t, g, 1)

	info, created, err := c.PutDocument(ctx, id, "Seller: Anna, 12 Hill St\n")
	if err != nil {
		t.Fatal(err)
	}
	if !created || info.Version != 1 {
		t.Fatalf("put via gate: created=%v info=%+v", created, info)
	}
	// The owner — and only the owner — stores it.
	own, err := client.New(shards[1].URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := own.GetDocument(ctx, id); err != nil {
		t.Fatalf("owner shard missing the document: %v", err)
	}
	other, err := client.New(shards[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.GetDocument(ctx, id); !errors.Is(err, client.ErrDocumentNotFound) {
		t.Fatalf("non-owner shard has the document: %v", err)
	}

	doc, err := c.GetDocument(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PatchDocument(ctx, id, client.Splice{
		Offset: len(doc.Text), Insert: "Seller: Bob, 1 Main Rd\n",
	}); err != nil {
		t.Fatal(err)
	}

	// Extraction and streaming by reference route to the owner too.
	resp, err := c.Extract(ctx, client.ExtractRequest{
		Query:  client.Query{Expr: sellerExpr},
		DocIDs: []string{id},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 2 {
		t.Fatalf("doc_id extract via gate: %v", resp.Results)
	}
	st, err := c.ExtractStream(ctx, client.StreamRequest{
		Query: client.Query{Expr: sellerExpr}, DocID: id,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lines int
	for {
		if _, err := st.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		lines++
	}
	st.Close()
	if lines != 2 {
		t.Fatalf("doc_id stream via gate: %d lines, want 2", lines)
	}

	if err := c.DeleteDocument(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetDocument(ctx, id); !errors.Is(err, client.ErrDocumentNotFound) {
		t.Fatalf("get after delete via gate: %v", err)
	}
}

// Registry reads fail over: with one shard dead (circuit still
// closed, probes off), manifest reads through the gate retry onto the
// survivors and keep answering.
func TestRegistryReadFailover(t *testing.T) {
	shards := bootShards(t, 3)
	g, ts := bootGate(t, Options{ProbeInterval: -1, Retries: 2},
		shards[0].URL, shards[1].URL, shards[2].URL)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	man, _, err := c.RegisterSpanner(ctx, "seller", sellerExpr)
	if err != nil {
		t.Fatal(err)
	}

	shards[0].Close()
	for i := 0; i < 5; i++ {
		got, err := c.GetManifest(ctx, "seller", "")
		if err != nil {
			t.Fatalf("read %d after shard death: %v", i, err)
		}
		if got.Version != man.Version {
			t.Fatalf("read %d: version %s, want %s", i, got.Version, man.Version)
		}
	}
	// Pinned version reads carry the query through the proxy.
	if _, err := c.GetManifest(ctx, "seller", man.Version); err != nil {
		t.Fatalf("pinned read after shard death: %v", err)
	}
	if g.Stats().Retries == 0 {
		t.Fatal("failing over never counted a retry")
	}
	if _, err := c.ListManifests(ctx); err != nil {
		t.Fatalf("list after shard death: %v", err)
	}
}

// With every shard's circuit open, registry reads answer 503
// "unavailable" with a Retry-After hint, not a transport error.
func TestRegistryReadAllShardsDown(t *testing.T) {
	g, ts := bootGate(t, Options{ProbeInterval: -1, Retries: 1, FailThreshold: 1},
		deadServer(t))
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.GetManifest(context.Background(), "ghost", "")
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want 503", err)
	}
	if !errors.Is(err, client.ErrUnavailable) || ce.RetryAfter == 0 {
		t.Fatalf("got %+v, want unavailable + Retry-After", ce)
	}
	if g.Stats().Healthy != 0 {
		t.Fatalf("healthy=%d, want 0", g.Stats().Healthy)
	}
}

// A registry write that cannot reach every shard must fail loudly —
// a silently diverged artifact set would break stateless routing.
func TestRegistryWriteShardDown(t *testing.T) {
	shards := bootShards(t, 2)
	_, ts := bootGate(t, Options{ProbeInterval: -1}, shards[0].URL, shards[1].URL)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	shards[1].Close()
	_, _, err = c.RegisterSpanner(context.Background(), "seller", sellerExpr)
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusBadGateway {
		t.Fatalf("got %v, want 502", err)
	}
	if !strings.Contains(ce.Message, shards[1].URL) {
		t.Fatalf("error does not name the failed shard: %s", ce.Message)
	}

	// A query-shaped failure passes through instead: the request is
	// equally wrong on every shard, so the first 4xx answers.
	_, _, err = c.RegisterSpanner(context.Background(), "bad", "x{")
	if !errors.Is(err, client.ErrSyntax) {
		t.Fatalf("bad expr via gate: %v, want ErrSyntax", err)
	}

	// DELETE broadcasts the same way.
	if err := c.DeleteSpanner(context.Background(), "seller", ""); err == nil {
		t.Fatal("delete with a dead shard succeeded")
	}
}

// Malformed and oversized bodies are rejected at the gate with the
// typed envelope, before any shard sees them.
func TestBadBodies(t *testing.T) {
	shards := bootShards(t, 1)
	_, ts := bootGate(t, Options{ProbeInterval: -1, MaxBody: 256}, shards[0].URL)

	for _, path := range []string{"/v1/extract", "/v1/extract/stream"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		drainBody(resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with junk body: %d, want 400", path, resp.StatusCode)
		}
	}
	big := strings.NewReader(`{"expr": "a", "docs": ["` + strings.Repeat("a", 4096) + `"]}`)
	resp, err := http.Post(ts.URL+"/v1/extract", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/documents/big",
		strings.NewReader(`{"text": "`+strings.Repeat("a", 4096)+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized document: %d, want 413", resp.StatusCode)
	}
}

// A dead document owner exhausts the stream retry budget as 503
// "unavailable": the owner is the only shard holding the document, so
// there is no one to fail over to.
func TestStreamOwnerDead(t *testing.T) {
	shards := bootShards(t, 2)
	g, ts := bootGate(t, Options{ProbeInterval: -1, Retries: 1, AttemptTimeout: 2 * time.Second},
		shards[0].URL, shards[1].URL)
	id := ownedID(t, g, 0)
	shards[0].Close()

	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ExtractStream(context.Background(), client.StreamRequest{
		Query: client.Query{Expr: sellerExpr}, DocID: id,
	})
	var ce *client.Error
	if !errors.As(err, &ce) || ce.Status != http.StatusServiceUnavailable {
		t.Fatalf("stream to dead owner: %v, want 503", err)
	}
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("got %+v, want unavailable", ce)
	}
}
