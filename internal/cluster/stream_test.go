package cluster

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// slowStreamShard speaks the stream wire contract by hand: it emits
// its lines with controlled pacing so tests can measure what the gate
// does between them.
type slowStreamShard struct {
	lines      []string
	gap        time.Duration // pause after the first line
	headerLag  time.Duration // pause before sending response headers
	dieMidway  bool          // abort after emitting half the lines
	downstream http.Handler
}

func (s *slowStreamShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("POST /v1/extract/stream", func(w http.ResponseWriter, r *http.Request) {
		if s.headerLag > 0 {
			time.Sleep(s.headerLag)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl := w.(http.Flusher)
		for i, line := range s.lines {
			if s.dieMidway && i == len(s.lines)/2 {
				panic(http.ErrAbortHandler)
			}
			w.Write([]byte(line + "\n"))
			fl.Flush()
			if i == 0 && s.gap > 0 {
				time.Sleep(s.gap)
			}
		}
	})
	return mux
}

func bootStreamShard(t *testing.T, s *slowStreamShard) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestStreamTTFBFlushThrough is the satellite's time-to-first-byte
// check: a shard that emits one mapping immediately and then stalls
// must have that first mapping visible through the gate long before
// the stream completes — the proxy flushes per line instead of
// buffering the body.
func TestStreamTTFBFlushThrough(t *testing.T) {
	shard := &slowStreamShard{
		lines: []string{`{"x":{"start":1,"end":2,"content":"a"}}`, `{"x":{"start":2,"end":3,"content":"b"}}`},
		gap:   1200 * time.Millisecond,
	}
	ts := bootStreamShard(t, shard)
	_, gate := bootGate(t, Options{ProbeInterval: -1}, ts.URL)

	start := time.Now()
	resp := postJSON(t, gate.URL+"/v1/extract/stream", map[string]any{"expr": "x{a}", "doc": "a"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	ttfb := time.Since(start)
	if first != shard.lines[0]+"\n" {
		t.Fatalf("first line %q", first)
	}
	// The shard stalls 1.2s after line one; seeing it in a fraction of
	// that proves no whole-body buffering anywhere in the proxy path.
	if ttfb > 600*time.Millisecond {
		t.Fatalf("time to first proxied line %v; gate is buffering", ttfb)
	}
	second, err := br.ReadString('\n')
	if err != nil || second != shard.lines[1]+"\n" {
		t.Fatalf("second line %q err %v", second, err)
	}
}

// TestStreamMidDeath: a shard dying mid-stream must sever the
// downstream connection — the truncated result set cannot end with a
// clean EOF.
func TestStreamMidDeath(t *testing.T) {
	shard := &slowStreamShard{
		lines: []string{
			`{"x":{"start":1,"end":2,"content":"a"}}`,
			`{"x":{"start":2,"end":3,"content":"b"}}`,
			`{"x":{"start":3,"end":4,"content":"c"}}`,
			`{"x":{"start":4,"end":5,"content":"d"}}`,
		},
		dieMidway: true,
	}
	ts := bootStreamShard(t, shard)
	_, gate := bootGate(t, Options{ProbeInterval: -1, Retries: 2}, ts.URL)

	resp := postJSON(t, gate.URL+"/v1/extract/stream", map[string]any{"expr": "x{a}", "doc": "a"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	var lines int
	var readErr error
	for {
		_, err := br.ReadString('\n')
		if err != nil {
			readErr = err
			break
		}
		lines++
	}
	if lines != len(shard.lines)/2 {
		t.Fatalf("read %d lines before death, want %d", lines, len(shard.lines)/2)
	}
	if readErr == nil || readErr.Error() == "EOF" {
		t.Fatalf("truncated stream ended cleanly (err=%v); must sever", readErr)
	}
}

// TestStreamFailoverBeforeFirstByte: a dead first-choice shard is
// invisible to the client — the gate retries the stream on a survivor
// before committing any bytes.
func TestStreamFailoverBeforeFirstByte(t *testing.T) {
	healthy := bootShards(t, 1)[0]
	_, gate := bootGate(t, Options{ProbeInterval: -1, Retries: 2},
		deadServer(t), healthy.URL)

	doc := corpus(1)[0]
	// Several attempts so rotation lands on the dead shard at least once.
	for i := 0; i < 4; i++ {
		resp := postJSON(t, gate.URL+"/v1/extract/stream", map[string]any{"expr": sellerExpr, "doc": doc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status %d", i, resp.StatusCode)
		}
		var n int
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var m map[string]any
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				t.Fatalf("bad NDJSON line: %v", err)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("attempt %d: stream error %v", i, err)
		}
		resp.Body.Close()
		if n == 0 {
			t.Fatalf("attempt %d: no mappings", i)
		}
	}
}

// TestStreamHeaderLagFailover: a shard that sits on its response
// headers past the per-attempt timeout is abandoned before commit;
// the client still gets the full stream from the survivor.
func TestStreamHeaderLagFailover(t *testing.T) {
	laggy := bootStreamShard(t, &slowStreamShard{headerLag: 2 * time.Second})
	healthy := bootShards(t, 1)[0]
	_, gate := bootGate(t, Options{
		ProbeInterval:  -1,
		AttemptTimeout: 150 * time.Millisecond,
		Retries:        3,
	}, laggy.URL, healthy.URL)

	doc := corpus(1)[0]
	for i := 0; i < 3; i++ {
		start := time.Now()
		resp := postJSON(t, gate.URL+"/v1/extract/stream", map[string]any{"expr": sellerExpr, "doc": doc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: status %d", i, resp.StatusCode)
		}
		var n int
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			n++
		}
		resp.Body.Close()
		if n == 0 {
			t.Fatalf("attempt %d: no mappings", i)
		}
		if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
			t.Fatalf("attempt %d took %v; header-lag failover should beat the 2s stall", i, elapsed)
		}
	}
}
