package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"spanners/client"
	"spanners/internal/httpapi"
)

// Document CRUD routes to the owner shard — the one the document ID
// hashes to — and is never retried: PATCH is not idempotent, and no
// other shard stores the document anyway. Registry writes broadcast
// to every configured shard so the artifact set stays identical
// everywhere (that identity is what makes query routing stateless);
// registry reads fail over across the healthy shards.

// handleDocument proxies one document operation to its owner.
func (g *Gate) handleDocument(w http.ResponseWriter, r *http.Request) {
	own := g.owner(r.PathValue("id"))
	if own.open.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(DefaultRetryAfter))
		httpapi.WriteError(w, http.StatusServiceUnavailable, client.CodeUnavailable,
			fmt.Sprintf("document owner %s circuit open", own.name()))
		return
	}
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	resp, err := g.proxy(r.Context(), own, r, body)
	if err != nil {
		writeUpstream(w, err)
		return
	}
	defer resp.Body.Close()
	writeProxied(w, resp)
}

// handleRegistryWrite broadcasts a registry mutation (PUT or DELETE)
// to every configured shard — health notwithstanding, because a shard
// that silently misses an artifact would break routing statelessness.
// All shards must answer: the first 4xx answer passes through (the
// request is equally wrong everywhere), and any transport failure is
// a 502 naming the shard, so the operator knows the cluster would
// have diverged.
func (g *Gate) handleRegistryWrite(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var first *http.Response
	for _, sh := range g.shards {
		resp, err := g.proxy(r.Context(), sh, r, body)
		if err != nil {
			if first != nil {
				first.Body.Close()
			}
			writeUpstream(w, fmt.Errorf("registry write to shard %s: %w", sh.name(), err))
			return
		}
		if resp.StatusCode/100 != 2 {
			if first != nil {
				first.Body.Close()
			}
			defer resp.Body.Close()
			writeProxied(w, resp)
			return
		}
		if first == nil {
			first = resp
		} else {
			resp.Body.Close()
		}
	}
	defer first.Body.Close()
	// Registration is content-addressed, so every shard's 2xx body is
	// identical; relay the first.
	writeProxied(w, first)
}

// handleRegistryRead serves manifests and listings from any healthy
// shard, failing over on transport errors.
func (g *Gate) handleRegistryRead(w http.ResponseWriter, r *http.Request) {
	tried := map[*shard]bool{}
	var lastErr error
	for attempt := 0; ; attempt++ {
		sh := g.pick(tried, attempt)
		if sh == nil {
			if lastErr != nil {
				writeUpstream(w, fmt.Errorf("%w (last attempt: %v)", errNoShards, lastErr))
			} else {
				writeUpstream(w, errNoShards)
			}
			return
		}
		resp, err := g.proxy(r.Context(), sh, r, nil)
		if err == nil {
			defer resp.Body.Close()
			writeProxied(w, resp)
			return
		}
		if r.Context().Err() != nil {
			writeUpstream(w, err)
			return
		}
		lastErr = err
		tried[sh] = true
		if attempt >= g.retries {
			writeUpstream(w, err)
			return
		}
		g.counters.retries.Add(1)
		if err := g.backoff(r.Context(), attempt); err != nil {
			writeUpstream(w, err)
			return
		}
	}
}

// readBody drains the request body under the gate's cap so it can be
// replayed per shard.
func (g *Gate) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Body == nil {
		return nil, true
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err == nil {
		return body, true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpapi.WriteError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, err.Error())
	} else {
		httpapi.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, "read request: "+err.Error())
	}
	return nil, false
}

// proxy replays the inbound request — same method, path, query and
// body — against one shard under the per-attempt deadline, counting
// the outcome and feeding the circuit breaker. The response body is
// NOT consumed; callers own it.
func (g *Gate) proxy(ctx context.Context, sh *shard, r *http.Request, body []byte) (*http.Response, error) {
	actx, cancel := g.attemptCtx(ctx)
	url := sh.c.BaseURL() + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, r.Method, url, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		defer cancel()
		switch {
		case ctx.Err() != nil:
			return nil, context.Cause(ctx)
		case actx.Err() != nil:
			sh.note(outcomeTimeout)
			sh.recordFailure(g.failThreshold)
			return nil, fmt.Errorf("shard %s: attempt timeout after %v: %w", sh.name(), g.attemptTimeout, err)
		default:
			sh.note(outcomeError)
			sh.recordFailure(g.failThreshold)
			return nil, fmt.Errorf("shard %s: %w", sh.name(), err)
		}
	}
	// Tie the attempt context's lifetime to the body: proxied
	// responses are small (manifests, document metadata), so reading
	// them out stays within the attempt window.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	sh.recordSuccess()
	if resp.StatusCode/100 == 2 {
		sh.note(outcomeOK)
	} else if resp.StatusCode < 500 {
		sh.note(outcomeClientError)
	} else {
		sh.note(outcomeError)
	}
	return resp, nil
}

// cancelOnClose releases a proxied response's attempt context when
// its body is closed.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	defer c.cancel()
	return c.ReadCloser.Close()
}

// writeProxied relays a shard response downstream: status, the
// content headers that matter, and the body verbatim.
func writeProxied(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}
