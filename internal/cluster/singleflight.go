package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"spanners/client"
)

// Single-flight coalescing: identical (query, document) units from
// concurrent requests — or duplicates within one batch — execute
// upstream once. The first arrival leads and runs the extraction; the
// rest wait for its result. A leader that dies of its own request's
// cancellation does not poison the waiters: they re-elect and retry,
// because the work itself was never attempted to completion.

// flightCall is one in-flight unit of extraction work.
type flightCall struct {
	done chan struct{}
	res  json.RawMessage
	err  error
}

// flightGroup is the in-flight unit map.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// lead returns the call for key and whether the caller is its leader.
// Leaders must finish with complete.
func (f *flightGroup) lead(key string) (*flightCall, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.m[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.m[key] = c
	return c, true
}

// complete publishes the leader's result and removes the key, so the
// next identical unit starts fresh work instead of reading a stale
// memo — coalescing is about concurrent duplicates, not caching.
func (f *flightGroup) complete(key string, c *flightCall, res json.RawMessage, err error) {
	c.res, c.err = res, err
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
}

// await blocks until the leader completes or ctx ends.
func (f *flightGroup) await(ctx context.Context, c *flightCall) (json.RawMessage, error) {
	select {
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	case <-c.done:
		return c.res, c.err
	}
}

// unitKey identifies one (query, document) extraction unit. Inline
// text and store references can never collide (distinct prefixes),
// and the query is keyed by its canonical JSON — struct encoding
// order is fixed, so equal queries render equal keys.
func unitKey(q client.Query, u unit) string {
	qk, _ := json.Marshal(q)
	if u.docID != "" {
		return string(qk) + "\x00i\x00" + u.docID
	}
	return string(qk) + "\x00d\x00" + u.doc
}

// leaderCanceled reports whether a coalesced result died of the
// LEADER's context rather than the work itself, in which case a
// waiter should re-elect and run the unit.
func leaderCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
