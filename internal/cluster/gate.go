// Package cluster implements spangate: a scatter/gather front over N
// spand shards speaking the same /v1 wire contract as a single spand.
//
// The content-addressed registry makes routing stateless: every shard
// pre-warms an identical artifact + DFA-sidecar set, so any shard can
// serve any pinned name@version or algebra query, and the gate only
// has to shard documents. Inline batch documents scatter across the
// healthy shards and the per-shard responses merge back in input
// order, spliced as raw bytes so the merged body is byte-identical to
// a single spand answering the whole batch. Stored documents are
// owned by the shard their ID hashes to — document CRUD and doc_id
// extractions route there.
//
// Availability is the gate's job, not the client's: shards are
// health-checked (periodic /v1/healthz probes, circuit-break after
// consecutive failures), failed scatter calls retry on the surviving
// shards with per-attempt timeouts and jittered backoff, identical
// in-flight (query, document) units coalesce single-flight, and an
// in-flight cap sheds load with Retry-After before the fan-out melts
// down. Everything is observable through the spand_gate_* Prometheus
// families on /v1/metrics.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"spanners/client"
	"spanners/internal/httpapi"
	"spanners/internal/obs"
)

// Defaults for Options fields left zero.
const (
	// DefaultProbeInterval is how often each shard's /v1/healthz is
	// probed in the background.
	DefaultProbeInterval = 2 * time.Second
	// DefaultFailThreshold is how many consecutive failures (probe or
	// request transport errors) open a shard's circuit.
	DefaultFailThreshold = 3
	// DefaultAttemptTimeout bounds one upstream attempt: a whole batch
	// call, or a stream's time to response headers.
	DefaultAttemptTimeout = 15 * time.Second
	// DefaultRetries is how many times a failed scatter call is
	// retried on the surviving shards (total attempts = 1 + retries).
	DefaultRetries = 2
	// DefaultBackoffBase seeds the jittered exponential backoff
	// between retry attempts.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultMaxInFlight caps concurrently admitted extraction
	// requests before the gate sheds with 503 + Retry-After.
	DefaultMaxInFlight = 256
	// DefaultRetryAfter is the hint sent with shed and all-shards-down
	// responses.
	DefaultRetryAfter = 1 * time.Second
)

// Options configures New.
type Options struct {
	// Shards are the spand base URLs ("http://host:port"), at least
	// one. Their order fixes document-ID ownership: doc hash % N picks
	// the owner, so the list must be identical (same order) on every
	// gate fronting the same cluster.
	Shards []string
	// HTTPClient is the transport used for every upstream call; nil
	// selects http.DefaultClient.
	HTTPClient *http.Client
	// ProbeInterval is the health-check period (0 selects the
	// default; negative disables background probing — circuits then
	// open and close on request outcomes only).
	ProbeInterval time.Duration
	// FailThreshold is the consecutive-failure count that opens a
	// shard's circuit (0 selects the default).
	FailThreshold int
	// AttemptTimeout bounds one upstream attempt (0 selects the
	// default, negative disables).
	AttemptTimeout time.Duration
	// Retries caps retry attempts per failed scatter call (negative
	// disables retrying; 0 selects the default).
	Retries int
	// BackoffBase seeds the jittered exponential backoff between
	// attempts (0 selects the default).
	BackoffBase time.Duration
	// MaxInFlight caps admitted extraction requests (0 selects the
	// default, negative disables admission control).
	MaxInFlight int
	// MaxBody caps request body bytes (0 selects
	// httpapi.DefaultMaxBody).
	MaxBody int64
	// Logger receives structured logs; nil discards them.
	Logger *slog.Logger
}

// Gate is the scatter/gather front: an http.Handler serving the /v1
// surface over its shard set. Construct with New, release with Close.
type Gate struct {
	shards  []*shard
	mux     *http.ServeMux
	hc      *http.Client
	log     *slog.Logger
	maxBody int64

	failThreshold  int
	attemptTimeout time.Duration
	retries        int
	backoffBase    time.Duration
	maxInFlight    int64

	flights  flightGroup
	counters gateCounters
	fanout   *obs.Histogram
	ttfb     *obs.Histogram
	prom     *obs.Registry

	stopProbe context.CancelFunc
	probeDone chan struct{}
}

// New validates the shard list, wires the routes and metrics, and
// starts the background health probes.
func New(opt Options) (*Gate, error) {
	if len(opt.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard required")
	}
	if opt.HTTPClient == nil {
		opt.HTTPClient = http.DefaultClient
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = DefaultProbeInterval
	}
	if opt.FailThreshold <= 0 {
		opt.FailThreshold = DefaultFailThreshold
	}
	if opt.AttemptTimeout == 0 {
		opt.AttemptTimeout = DefaultAttemptTimeout
	}
	if opt.Retries == 0 {
		opt.Retries = DefaultRetries
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = DefaultBackoffBase
	}
	if opt.MaxInFlight == 0 {
		opt.MaxInFlight = DefaultMaxInFlight
	}
	if opt.MaxBody <= 0 {
		opt.MaxBody = httpapi.DefaultMaxBody
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.DiscardHandler)
	}
	g := &Gate{
		mux:            http.NewServeMux(),
		hc:             opt.HTTPClient,
		log:            opt.Logger,
		maxBody:        opt.MaxBody,
		failThreshold:  opt.FailThreshold,
		attemptTimeout: opt.AttemptTimeout,
		retries:        opt.Retries,
		backoffBase:    opt.BackoffBase,
		maxInFlight:    int64(opt.MaxInFlight),
		fanout:         obs.NewHistogram(obs.DefaultBuckets()),
		ttfb:           obs.NewHistogram(obs.DefaultBuckets()),
	}
	g.flights.m = map[string]*flightCall{}
	for _, raw := range opt.Shards {
		c, err := client.New(raw, client.WithHTTPClient(opt.HTTPClient))
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %q: %w", raw, err)
		}
		g.shards = append(g.shards, newShard(c))
	}
	g.registerMetrics()

	g.mux.HandleFunc("POST /v1/extract", g.admit(g.handleExtract))
	g.mux.HandleFunc("POST /v1/extract/stream", g.admit(g.handleStream))
	g.mux.HandleFunc("PUT /v1/documents/{id}", g.handleDocument)
	g.mux.HandleFunc("GET /v1/documents/{id}", g.handleDocument)
	g.mux.HandleFunc("PATCH /v1/documents/{id}", g.handleDocument)
	g.mux.HandleFunc("DELETE /v1/documents/{id}", g.handleDocument)
	g.mux.HandleFunc("PUT /v1/registry/{name}", g.handleRegistryWrite)
	g.mux.HandleFunc("DELETE /v1/registry/{name}", g.handleRegistryWrite)
	g.mux.HandleFunc("GET /v1/registry", g.handleRegistryRead)
	g.mux.HandleFunc("GET /v1/registry/{$}", g.handleRegistryRead)
	g.mux.HandleFunc("GET /v1/registry/{name}", g.handleRegistryRead)
	g.mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)

	probeCtx, cancel := context.WithCancel(context.Background())
	g.stopProbe = cancel
	g.probeDone = make(chan struct{})
	if opt.ProbeInterval > 0 {
		go g.probeLoop(probeCtx, opt.ProbeInterval)
	} else {
		close(g.probeDone)
	}
	return g, nil
}

// Close stops the background health probes. In-flight requests are
// unaffected.
func (g *Gate) Close() {
	g.stopProbe()
	<-g.probeDone
}

// ServeHTTP echoes the request ID and dispatches to the /v1 routes.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	g.mux.ServeHTTP(w, r)
}

// admit is the admission-control middleware on the extraction routes:
// when the in-flight gauge saturates the request is shed immediately
// with 503, code "overloaded" and a Retry-After hint — a full gate
// queueing more fan-outs would only melt the shards down further.
func (g *Gate) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n := g.counters.inFlight.Add(1); g.maxInFlight > 0 && n > g.maxInFlight {
			g.counters.inFlight.Add(-1)
			g.counters.shed.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(DefaultRetryAfter))
			httpapi.WriteError(w, http.StatusServiceUnavailable, client.CodeOverloaded,
				fmt.Sprintf("gate saturated: %d extraction requests in flight", g.maxInFlight))
			return
		}
		defer g.counters.inFlight.Add(-1)
		h(w, r)
	}
}

// retryAfterSeconds renders a Retry-After hint in whole seconds,
// minimum 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// owner returns the shard owning a stored document ID: FNV-1a over
// the ID mod the configured shard count. Ownership depends only on
// the configured list, never on health — a down owner means the
// document is unavailable, not silently re-homed to a shard that has
// never seen it.
func (g *Gate) owner(docID string) *shard {
	h := fnv.New32a()
	h.Write([]byte(docID))
	return g.shards[h.Sum32()%uint32(len(g.shards))]
}

// healthy snapshots the shards whose circuits are closed.
func (g *Gate) healthy() []*shard {
	var out []*shard
	for _, sh := range g.shards {
		if !sh.open.Load() {
			out = append(out, sh)
		}
	}
	return out
}

// attemptCtx derives the per-attempt deadline.
func (g *Gate) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if g.attemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, g.attemptTimeout)
}

// backoff sleeps the jittered exponential delay before retry attempt
// n (0-based), honoring ctx.
func (g *Gate) backoff(ctx context.Context, attempt int) error {
	d := g.backoffBase << attempt
	// Full jitter in [d/2, 3d/2): retries from concurrent requests
	// against the same struggling shard set spread out instead of
	// stampeding in lockstep.
	d = d/2 + time.Duration(rand.Int64N(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// decodeBody parses the JSON request body under the gate's size cap.
func (g *Gate) decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, g.maxBody)).Decode(dst)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		httpapi.WriteError(w, http.StatusRequestEntityTooLarge, client.CodeTooLarge, err.Error())
		return false
	}
	httpapi.WriteError(w, http.StatusBadRequest, client.CodeBadRequest, "decode request: "+err.Error())
	return false
}

// writeUpstream relays an upstream failure to the caller. A decoded
// client.Error passes through verbatim — same status, same code, same
// message, Retry-After preserved — so the gate is transparent for
// query errors (syntax, unbound, document_not_found, ...). Transport
// errors become 502 upstream_error; an exhausted shard set becomes
// 503 unavailable with a Retry-After hint.
func writeUpstream(w http.ResponseWriter, err error) {
	var ce *client.Error
	switch {
	case errors.As(err, &ce):
		if ce.RetryAfter > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(ce.RetryAfter))
		}
		code := ce.Code
		if code == "" {
			code = client.CodeUpstream
		}
		httpapi.WriteError(w, ce.Status, code, ce.Message)
	case errors.Is(err, errNoShards):
		w.Header().Set("Retry-After", retryAfterSeconds(DefaultRetryAfter))
		httpapi.WriteError(w, http.StatusServiceUnavailable, client.CodeUnavailable, err.Error())
	case errors.Is(err, context.Canceled):
		httpapi.WriteError(w, http.StatusRequestTimeout, client.CodeCanceled, err.Error())
	default:
		httpapi.WriteError(w, http.StatusBadGateway, client.CodeUpstream, err.Error())
	}
}

// errNoShards reports an empty surviving shard set: every circuit is
// open (or every retry target failed). The response is 503
// "unavailable" with Retry-After — the cluster may heal.
var errNoShards = errors.New("no healthy shards")
