package cluster

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"

	"spanners/internal/obs"
)

// gateCounters are the gate-level atomic counters behind the
// spand_gate_* families and the Stats snapshot.
type gateCounters struct {
	inFlight      atomic.Int64
	shed          atomic.Uint64
	coalesced     atomic.Uint64
	retries       atomic.Uint64
	streamedLines atomic.Uint64
}

// registerMetrics wires the cluster-level Prometheus families into
// the gate's registry, served by /v1/metrics?format=prom. Counters
// collect from the live atomics at scrape time; the histograms are
// registered directly.
func (g *Gate) registerMetrics() {
	r := obs.NewRegistry()
	g.prom = r
	r.RegisterCounterFunc("spand_gate_shard_requests_total",
		"Upstream requests by shard and outcome (ok, client_error, error, timeout).",
		func() []obs.Sample {
			var out []obs.Sample
			for _, sh := range g.shards {
				for o, name := range outcomeNames {
					out = append(out, obs.Sample{
						Labels: []string{obs.L("shard", sh.name()), obs.L("outcome", name)},
						Value:  float64(sh.outcomes[o].Load()),
					})
				}
			}
			return out
		})
	r.RegisterHistogram("spand_gate_fanout_duration_seconds",
		"Batch extract latency through the gate: decode, scatter, retries, merge.",
		g.fanout)
	r.RegisterHistogram("spand_gate_stream_ttfb_seconds",
		"Time from stream commit to the first proxied mapping line.",
		g.ttfb)
	r.RegisterCounterFunc("spand_gate_coalesced_total",
		"Extraction units served by another in-flight identical unit (single-flight).",
		func() []obs.Sample { return []obs.Sample{{Value: float64(g.counters.coalesced.Load())}} })
	r.RegisterCounterFunc("spand_gate_shed_total",
		"Extraction requests shed by admission control (503 overloaded).",
		func() []obs.Sample { return []obs.Sample{{Value: float64(g.counters.shed.Load())}} })
	r.RegisterCounterFunc("spand_gate_retries_total",
		"Upstream attempts beyond the first, across batch, stream and registry-read calls.",
		func() []obs.Sample { return []obs.Sample{{Value: float64(g.counters.retries.Load())}} })
	r.RegisterCounterFunc("spand_gate_streamed_lines_total",
		"NDJSON mapping lines proxied through (each flushed individually).",
		func() []obs.Sample { return []obs.Sample{{Value: float64(g.counters.streamedLines.Load())}} })
	r.RegisterCounterFunc("spand_gate_circuit_opens_total",
		"Circuit-breaker open transitions by shard.",
		func() []obs.Sample {
			var out []obs.Sample
			for _, sh := range g.shards {
				out = append(out, obs.Sample{
					Labels: []string{obs.L("shard", sh.name())},
					Value:  float64(sh.opened.Load()),
				})
			}
			return out
		})
	r.RegisterGaugeFunc("spand_gate_in_flight",
		"Admitted extraction requests currently in flight.",
		func() []obs.Sample { return []obs.Sample{{Value: float64(g.counters.inFlight.Load())}} })
	r.RegisterGaugeFunc("spand_gate_healthy_shards",
		"Shards whose circuit is currently closed.",
		func() []obs.Sample { return []obs.Sample{{Value: float64(len(g.healthy()))}} })
}

// ShardStats is one shard's health and traffic summary.
type ShardStats struct {
	URL                 string            `json:"url"`
	Healthy             bool              `json:"healthy"`
	ConsecutiveFailures int               `json:"consecutive_failures"`
	CircuitOpens        uint64            `json:"circuit_opens"`
	Requests            map[string]uint64 `json:"requests"`
}

// Stats is the gate's own snapshot: per-shard health and outcome
// counters plus the cluster-level gauges. It is the "stats" object in
// gate batch responses and the body of /v1/healthz and the default
// /v1/metrics.
type Stats struct {
	Shards        []ShardStats `json:"shards"`
	Healthy       int          `json:"healthy"`
	InFlight      int64        `json:"in_flight"`
	Coalesced     uint64       `json:"coalesced"`
	Shed          uint64       `json:"shed"`
	Retries       uint64       `json:"retries"`
	StreamedLines uint64       `json:"streamed_lines"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	st := Stats{
		InFlight:      g.counters.inFlight.Load(),
		Coalesced:     g.counters.coalesced.Load(),
		Shed:          g.counters.shed.Load(),
		Retries:       g.counters.retries.Load(),
		StreamedLines: g.counters.streamedLines.Load(),
	}
	for _, sh := range g.shards {
		healthy := !sh.open.Load()
		if healthy {
			st.Healthy++
		}
		reqs := map[string]uint64{}
		for o, name := range outcomeNames {
			reqs[name] = sh.outcomes[o].Load()
		}
		st.Shards = append(st.Shards, ShardStats{
			URL:                 sh.name(),
			Healthy:             healthy,
			ConsecutiveFailures: int(sh.fails.Load()),
			CircuitOpens:        sh.opened.Load(),
			Requests:            reqs,
		})
	}
	return st
}

// healthzResponse is the gate's /v1/healthz body.
type healthzResponse struct {
	Status string `json:"status"`
	Stats
}

// handleHealthz reports the gate's own liveness plus the shard map:
// "ok" when every circuit is closed, "degraded" when some are open,
// "down" when all are. The response is always 200 — the gate itself
// is alive; shard capacity is the payload, not the status code.
func (g *Gate) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := g.Stats()
	status := "ok"
	switch {
	case st.Healthy == 0:
		status = "down"
	case st.Healthy < len(g.shards):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(healthzResponse{Status: status, Stats: st})
}

// handleMetrics serves the gate stats: the Prometheus exposition with
// ?format=prom (or a text/plain / OpenMetrics Accept header), the
// JSON snapshot otherwise — mirroring spand's /v1/metrics negotiation.
func (g *Gate) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.ContentType)
		g.prom.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(g.Stats())
}

// wantsPrometheus mirrors the spand /metrics content negotiation.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "":
	default:
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}
