package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"spanners/client"
)

// unit is one (query, document) extraction work item: exactly one of
// an inline document or a store reference.
type unit struct {
	doc   string
	docID string
}

// handleExtract is the batch scatter/gather. The request decomposes
// into per-document units; each unit is coalesced single-flight, the
// leaders scatter across the healthy shards (inline documents
// round-robin, doc_ids to their owner), failed calls retry on the
// surviving set, and the per-document result arrays are spliced back
// in input order — byte-identical to one spand answering the whole
// batch.
func (g *Gate) handleExtract(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req client.ExtractRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	units := make([]unit, 0, len(req.Docs)+len(req.DocIDs))
	for _, d := range req.Docs {
		units = append(units, unit{doc: d})
	}
	for _, id := range req.DocIDs {
		units = append(units, unit{docID: id})
	}
	results, err := g.resolve(r.Context(), req.Query, units)
	g.fanout.Observe(time.Since(start))
	if err != nil {
		writeUpstream(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Results []json.RawMessage `json:"results"`
		Stats   Stats             `json:"stats"`
	}{Results: results, Stats: g.Stats()})
}

// leaderUnit is one unit this request leads: its position in the
// batch plus its single-flight handle.
type leaderUnit struct {
	idx  int
	key  string
	call *flightCall
}

// resolve turns units into their raw per-document result arrays,
// preserving unit order. An empty batch still validates the query
// against one shard, like a single spand compiling before answering.
func (g *Gate) resolve(ctx context.Context, q client.Query, units []unit) ([]json.RawMessage, error) {
	if len(units) == 0 {
		return g.validateEmpty(ctx, q)
	}
	out := make([]json.RawMessage, len(units))
	errs := make([]error, len(units))

	// Phase 1: classify. The first arrival on a (query, document) key
	// leads and will run the work; the rest coalesce onto its result.
	var (
		inline  []leaderUnit
		byOwner = map[*shard][]leaderUnit{}
		waiters []leaderUnit
	)
	for i, u := range units {
		key := unitKey(q, u)
		call, lead := g.flights.lead(key)
		lu := leaderUnit{idx: i, key: key, call: call}
		switch {
		case !lead:
			g.counters.coalesced.Add(1)
			waiters = append(waiters, lu)
		case u.docID != "":
			own := g.owner(u.docID)
			byOwner[own] = append(byOwner[own], lu)
		default:
			inline = append(inline, lu)
		}
	}

	// Phase 2: scatter the led groups concurrently. Inline documents
	// interleave round-robin over the healthy shards; doc_ids go to
	// their owner. Group goroutines write disjoint slice indices.
	var wg sync.WaitGroup
	if len(inline) > 0 {
		if healthy := g.healthy(); len(healthy) == 0 {
			for _, lu := range inline {
				g.failUnit(lu, errNoShards, errs)
			}
		} else {
			groups := make([][]leaderUnit, len(healthy))
			for j, lu := range inline {
				groups[j%len(groups)] = append(groups[j%len(groups)], lu)
			}
			for gi, grp := range groups {
				if len(grp) == 0 {
					continue
				}
				wg.Add(1)
				go func(rotate int, grp []leaderUnit) {
					defer wg.Done()
					g.runGroup(ctx, q, grp, units, nil, rotate, out, errs)
				}(gi, grp)
			}
		}
	}
	for own, grp := range byOwner {
		wg.Add(1)
		go func(own *shard, grp []leaderUnit) {
			defer wg.Done()
			g.runGroup(ctx, q, grp, units, own, 0, out, errs)
		}(own, grp)
	}
	wg.Wait()

	// Phase 3: collect coalesced results. A waiter whose leader died
	// of the leader's own cancellation re-elects and runs the unit
	// itself — the work was never actually attempted to completion.
	for _, wt := range waiters {
		for {
			res, err := g.flights.await(ctx, wt.call)
			if err != nil && leaderCanceled(err) && ctx.Err() == nil {
				call, lead := g.flights.lead(wt.key)
				if !lead {
					wt.call = call
					continue
				}
				grp := []leaderUnit{{idx: wt.idx, key: wt.key, call: call}}
				if u := units[wt.idx]; u.docID != "" {
					g.runGroup(ctx, q, grp, units, g.owner(u.docID), 0, out, errs)
				} else {
					g.runGroup(ctx, q, grp, units, nil, 0, out, errs)
				}
				break
			}
			out[wt.idx], errs[wt.idx] = res, err
			break
		}
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// validateEmpty handles a batch with no documents: one shard still
// sees the query so a syntax error answers 400 exactly like a single
// spand, and a well-formed query answers an empty result set.
func (g *Gate) validateEmpty(ctx context.Context, q client.Query) ([]json.RawMessage, error) {
	_, err := g.call(ctx, q, nil, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	return []json.RawMessage{}, nil
}

// failUnit records one unit's failure and releases its waiters.
func (g *Gate) failUnit(lu leaderUnit, err error, errs []error) {
	errs[lu.idx] = err
	g.flights.complete(lu.key, lu.call, nil, err)
}

// runGroup executes one shard-bound group of led units — one upstream
// batch call with the group's documents in unit order — then
// publishes each unit's raw result (or the group's error) to its
// single-flight waiters.
func (g *Gate) runGroup(ctx context.Context, q client.Query, grp []leaderUnit, units []unit,
	owner *shard, rotate int, out []json.RawMessage, errs []error) {
	var docs, docIDs []string
	for _, lu := range grp {
		if u := units[lu.idx]; u.docID != "" {
			docIDs = append(docIDs, u.docID)
		} else {
			docs = append(docs, u.doc)
		}
	}
	res, err := g.call(ctx, q, docs, docIDs, owner, rotate)
	if err == nil && len(res) != len(grp) {
		err = fmt.Errorf("%w: shard answered %d results for %d documents",
			errShardProtocol, len(res), len(grp))
	}
	for j, lu := range grp {
		if err != nil {
			errs[lu.idx] = err
			g.flights.complete(lu.key, lu.call, nil, err)
			continue
		}
		out[lu.idx] = res[j]
		g.flights.complete(lu.key, lu.call, res[j], nil)
	}
}

// errShardProtocol flags a shard response that does not match the
// wire contract (result count != document count).
var errShardProtocol = errors.New("shard protocol error")

// call issues one upstream batch extraction with the retry policy:
// per-attempt timeout, jittered exponential backoff, and failover
// across the surviving shards (owner-bound calls retry the owner
// only — no other shard stores its documents). Typed HTTP answers
// below 500 are the caller's problem and never retried; transport
// failures feed the circuit breaker.
func (g *Gate) call(ctx context.Context, q client.Query, docs, docIDs []string,
	owner *shard, rotate int) ([]json.RawMessage, error) {
	req := client.ExtractRequest{Query: q, Docs: docs, DocIDs: docIDs}
	tried := map[*shard]bool{}
	var lastErr error
	for attempt := 0; ; attempt++ {
		target := owner
		if target == nil {
			target = g.pick(tried, rotate+attempt)
		} else if target.open.Load() && attempt == 0 {
			// The owner's circuit is already open: fail fast, the
			// documents exist nowhere else.
			return nil, fmt.Errorf("%w: document owner %s circuit open", errNoShards, target.name())
		}
		if target == nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last attempt: %v)", errNoShards, lastErr)
			}
			return nil, errNoShards
		}
		res, err := g.attempt(ctx, target, req)
		if err == nil {
			return res, nil
		}
		if !g.retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		tried[target] = true
		if attempt >= g.retries {
			if isTyped(err) {
				return nil, err
			}
			// Retry budget spent on transport-class failures: from the
			// caller's seat the shard set is unreachable, not one bad
			// gateway hop — answer 503 so they know to come back.
			return nil, fmt.Errorf("%w (retries exhausted: %v)", errNoShards, err)
		}
		g.counters.retries.Add(1)
		if err := g.backoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// pick selects the next healthy, untried shard, rotating by pos so
// concurrent groups spread instead of piling onto the first survivor.
func (g *Gate) pick(tried map[*shard]bool, pos int) *shard {
	healthy := g.healthy()
	if len(healthy) == 0 {
		return nil
	}
	for i := range healthy {
		sh := healthy[(pos+i)%len(healthy)]
		if !tried[sh] {
			return sh
		}
	}
	return nil
}

// attempt issues one upstream call under the per-attempt deadline,
// classifying the outcome on the shard's counters and feeding the
// circuit breaker: transport-class failures count toward opening it,
// any answered request (2xx or typed error) closes it.
func (g *Gate) attempt(ctx context.Context, sh *shard, req client.ExtractRequest) ([]json.RawMessage, error) {
	actx, cancel := g.attemptCtx(ctx)
	defer cancel()
	res, err := sh.c.ExtractRaw(actx, req)
	switch {
	case err == nil:
		sh.note(outcomeOK)
		sh.recordSuccess()
		return res.Results, nil
	case isTyped(err):
		var ce *client.Error
		errors.As(err, &ce)
		if ce.Status < 500 {
			sh.note(outcomeClientError)
		} else {
			sh.note(outcomeError)
		}
		sh.recordSuccess() // the shard answered; the request was the problem
		return nil, err
	case actx.Err() != nil && ctx.Err() == nil:
		// The per-attempt deadline fired while the request context is
		// still alive: the shard is slow, not the caller gone.
		sh.note(outcomeTimeout)
		sh.recordFailure(g.failThreshold)
		return nil, fmt.Errorf("shard %s: attempt timeout after %v: %w", sh.name(), g.attemptTimeout, err)
	case ctx.Err() != nil:
		return nil, context.Cause(ctx)
	default:
		sh.note(outcomeError)
		sh.recordFailure(g.failThreshold)
		return nil, fmt.Errorf("shard %s: %w", sh.name(), err)
	}
}

// isTyped reports whether err is a decoded HTTP error envelope — the
// shard answered, so the shard is alive.
func isTyped(err error) bool {
	var ce *client.Error
	return errors.As(err, &ce)
}

// retryable reports whether a failed attempt should move to another
// shard: transport failures and attempt timeouts are; typed answers
// below 500 are the request's own fault and are not. A 5xx answer
// (shard-side deadline, artifact corruption) retries too — another
// shard may hold a healthy copy or more headroom.
func (g *Gate) retryable(err error) bool {
	var ce *client.Error
	if errors.As(err, &ce) {
		return ce.Status >= 500
	}
	return !errors.Is(err, context.Canceled)
}

// firstError picks the error to surface for a batch: the first
// non-cancellation failure in unit order, falling back to the first
// failure of any kind — a typed query error beats a bystander unit's
// cancellation noise.
func firstError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return first
}
