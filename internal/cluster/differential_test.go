package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spanners/client"
	"spanners/internal/httpapi"
	"spanners/internal/registry"
	"spanners/internal/service"
)

// bootShards starts n real in-process spand servers, each with its
// own registry directory — the cluster shape spangate fronts.
func bootShards(t *testing.T, n int) []*httptest.Server {
	t.Helper()
	shards := make([]*httptest.Server, n)
	for i := range shards {
		reg, err := registry.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(service.Config{Workers: 2, Registry: reg})
		ts := httptest.NewServer(httpapi.New(svc, httpapi.Options{}))
		t.Cleanup(ts.Close)
		shards[i] = ts
	}
	return shards
}

// bootGate starts a gate over the given shard URLs with fast-test
// timings, serving it on its own listener.
func bootGate(t *testing.T, opt Options, urls ...string) (*Gate, *httptest.Server) {
	t.Helper()
	opt.Shards = urls
	if opt.AttemptTimeout == 0 {
		opt.AttemptTimeout = 5 * time.Second
	}
	if opt.BackoffBase == 0 {
		opt.BackoffBase = 5 * time.Millisecond
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = 50 * time.Millisecond
	}
	g, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	return g, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// rawResults posts an extract request and returns the raw bytes of
// its "results" field.
func rawResults(t *testing.T, baseURL string, req any) []byte {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/extract", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("extract against %s: status %d: %s", baseURL, resp.StatusCode, body)
	}
	var out struct {
		Results json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Results
}

// sellerExpr is the workload expression used across the differential
// tests: non-trivial (two variables, repetition) but fast.
const sellerExpr = `.*(Seller: x{[^,\n]*},[^\n]*\n).*`

// corpus builds a deterministic mixed batch: some documents with
// several matches, some with none, some empty.
func corpus(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		switch i % 4 {
		case 0:
			docs[i] = fmt.Sprintf("Seller: Anna%d, 12 Hill St\nSeller: Bob%d, 1 Main Rd\n", i, i)
		case 1:
			docs[i] = fmt.Sprintf("no sellers in doc %d\n", i)
		case 2:
			docs[i] = fmt.Sprintf("Seller: Carol%d, 9 Oak Ave\nnoise line\nSeller: Dan%d, 3 Elm St\nSeller: Eve%d, 7 Pine Rd\n", i, i, i)
		default:
			docs[i] = ""
		}
	}
	return docs
}

// TestDifferentialBatch is the acceptance differential: the same
// batch through a 3-shard spangate and through one spand must produce
// byte-identical, order-identical "results".
func TestDifferentialBatch(t *testing.T) {
	shards := bootShards(t, 3)
	_, gate := bootGate(t, Options{}, shards[0].URL, shards[1].URL, shards[2].URL)
	single := bootShards(t, 1)[0]

	docs := corpus(17)
	req := map[string]any{"expr": sellerExpr, "docs": docs}
	got := rawResults(t, gate.URL, req)
	want := rawResults(t, single.URL, req)
	if !bytes.Equal(got, want) {
		t.Fatalf("gate batch results diverge from single spand:\n gate: %s\n one:  %s", got, want)
	}

	// A second shape: registry-pinned query through both paths. The
	// registry write broadcasts, so every shard serves the pin.
	cg, err := client.New(gate.URL)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := client.New(single.URL)
	if err != nil {
		t.Fatal(err)
	}
	man, _, err := cg.RegisterSpanner(context.Background(), "sellers", sellerExpr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.RegisterSpanner(context.Background(), "sellers", sellerExpr); err != nil {
		t.Fatal(err)
	}
	pinned := map[string]any{"spanner": man.Ref(), "docs": docs}
	if got, want := rawResults(t, gate.URL, pinned), rawResults(t, single.URL, pinned); !bytes.Equal(got, want) {
		t.Fatalf("pinned results diverge:\n gate: %s\n one:  %s", got, want)
	}
}

// TestDifferentialDocIDs routes stored documents to their owner
// shards through the gate and asserts the mixed inline + referenced
// batch stays byte-identical to a single spand holding every document.
func TestDifferentialDocIDs(t *testing.T) {
	shards := bootShards(t, 3)
	_, gate := bootGate(t, Options{}, shards[0].URL, shards[1].URL, shards[2].URL)
	single := bootShards(t, 1)[0]

	cg, err := client.New(gate.URL)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := client.New(single.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ids []string
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("doc-%d", i)
		text := fmt.Sprintf("Seller: Store%d, %d Dock Rd\n", i, i)
		if _, _, err := cg.PutDocument(ctx, id, text); err != nil {
			t.Fatalf("put %s via gate: %v", id, err)
		}
		if _, _, err := cs.PutDocument(ctx, id, text); err != nil {
			t.Fatalf("put %s via single: %v", id, err)
		}
		ids = append(ids, id)
	}
	req := map[string]any{"expr": sellerExpr, "docs": corpus(5), "doc_ids": ids}
	got := rawResults(t, gate.URL, req)
	want := rawResults(t, single.URL, req)
	if !bytes.Equal(got, want) {
		t.Fatalf("doc_id results diverge:\n gate: %s\n one:  %s", got, want)
	}

	// The gate's document reads come back from the owner shard.
	doc, err := cg.GetDocument(ctx, "doc-3")
	if err != nil || doc.Text != "Seller: Store3, 3 Dock Rd\n" {
		t.Fatalf("get through gate: doc=%+v err=%v", doc, err)
	}
}

// TestDifferentialStream asserts the proxied NDJSON stream is
// byte-identical to a single spand's.
func TestDifferentialStream(t *testing.T) {
	shards := bootShards(t, 3)
	_, gate := bootGate(t, Options{}, shards[0].URL, shards[1].URL, shards[2].URL)
	single := bootShards(t, 1)[0]

	doc := corpus(3)[2]
	req := map[string]any{"expr": sellerExpr, "doc": doc}
	read := func(base string) []byte {
		resp := postJSON(t, base+"/v1/extract/stream", req)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	got, want := read(gate.URL), read(single.URL)
	if len(got) == 0 {
		t.Fatal("empty stream body")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream bodies diverge:\n gate: %q\n one:  %q", got, want)
	}
}

// TestQueryErrorsPassThrough asserts the gate is transparent for
// typed query errors: same status, same stable code as a single
// spand, decodable by the client package.
func TestQueryErrorsPassThrough(t *testing.T) {
	shards := bootShards(t, 2)
	_, gate := bootGate(t, Options{}, shards[0].URL, shards[1].URL)
	cg, err := client.New(gate.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	_, err = cg.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: "x{"}, Docs: []string{"abc"},
	})
	var ce *client.Error
	if !isClientErr(err, &ce) || ce.Status != http.StatusBadRequest || ce.Code != client.CodeSyntax {
		t.Fatalf("syntax error through gate: %v", err)
	}
	_, err = cg.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: "x{a}"}, DocIDs: []string{"never-stored"},
	})
	if !isClientErr(err, &ce) || ce.Status != http.StatusNotFound || ce.Code != client.CodeDocumentNotFound {
		t.Fatalf("missing document through gate: %v", err)
	}
	_, err = cg.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: "x{a}", Rule: "r"}, Docs: []string{"abc"},
	})
	if !isClientErr(err, &ce) || ce.Code != client.CodeBadQuery {
		t.Fatalf("bad query through gate: %v", err)
	}
}

func isClientErr(err error, ce **client.Error) bool {
	return errors.As(err, ce)
}
