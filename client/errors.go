package client

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// The stable error-code table. Every non-2xx spand (and spangate)
// response carries the unified envelope {"error": {"code", "message"}}
// whose code is one of these strings; the client decodes it into an
// *Error and the Err* sentinels below make each code matchable with
// errors.Is without string comparison at call sites.
const (
	// CodeSyntax: the RGX or algebra expression failed to parse.
	CodeSyntax = "syntax"
	// CodeUnbound: an algebra projection names a variable its input
	// cannot bind.
	CodeUnbound = "unbound"
	// CodeDifferenceBudget: a difference's determinization exceeded
	// the server's configured state budget (well-formed, 422).
	CodeDifferenceBudget = "difference_budget"
	// CodeBadQuery: the query did not set exactly one of
	// expr/rule/spanner/algebra.
	CodeBadQuery = "bad_query"
	// CodeBadSplice: a document patch whose offset or delete length
	// does not fit the stored text.
	CodeBadSplice = "bad_splice"
	// CodeBadName: a registry name or version that fails validation.
	CodeBadName = "bad_name"
	// CodeDocumentNotFound: a doc_id referencing no stored document.
	CodeDocumentNotFound = "document_not_found"
	// CodeNotFound: a registry name/version (or other resource) that
	// does not exist.
	CodeNotFound = "not_found"
	// CodeTooLarge: the request body exceeded the server's cap, or a
	// document would exceed the store budget.
	CodeTooLarge = "too_large"
	// CodeDeadline: the server-imposed extraction deadline expired;
	// back off or simplify the query.
	CodeDeadline = "deadline"
	// CodeCanceled: the client went away mid-request.
	CodeCanceled = "canceled"
	// CodeRegistryUnavailable: the server runs without a registry.
	CodeRegistryUnavailable = "registry_unavailable"
	// CodeBadArtifact: storage-level artifact corruption (500).
	CodeBadArtifact = "bad_artifact"
	// CodeBadRequest: malformed request body or parameters.
	CodeBadRequest = "bad_request"
	// CodeUnavailable: the service cannot serve the request right now
	// (spangate: every shard's circuit is open). Retry after the
	// Retry-After hint.
	CodeUnavailable = "unavailable"
	// CodeGone: a legacy unprefixed route requested on a server
	// running with -legacy-routes=false; the Link header names the
	// /v1 successor.
	CodeGone = "gone"
	// CodeOverloaded: spangate shed the request because its in-flight
	// gauge saturated; retry after the Retry-After hint.
	CodeOverloaded = "overloaded"
	// CodeUpstream: spangate could not get a usable response from any
	// shard for a reason other than load or health (unexpected
	// upstream failure).
	CodeUpstream = "upstream_error"
)

// Error is a decoded spand error envelope: the HTTP status, the
// stable machine-readable code and the human-readable message. It
// matches the per-code sentinels (ErrNotFound, ErrDeadline, ...)
// through errors.Is.
type Error struct {
	// Status is the HTTP status the server answered with.
	Status int
	// Code is the stable error code from the envelope ("syntax",
	// "document_not_found", ...). Empty when the response body was
	// not a recognizable envelope.
	Code string
	// Message is the human-readable error chain from the envelope
	// (or a body snippet when no envelope was present).
	Message string
	// RetryAfter is the parsed Retry-After hint on 503s, zero when
	// the server sent none.
	RetryAfter time.Duration
}

// Error renders the code, status and message on one line.
func (e *Error) Error() string {
	code := e.Code
	if code == "" {
		code = "http_" + strconv.Itoa(e.Status)
	}
	return fmt.Sprintf("%s (HTTP %d): %s", code, e.Status, e.Message)
}

// Is matches e against the package's code sentinels, so callers can
// write errors.Is(err, client.ErrNotFound) regardless of which typed
// server error produced the code.
func (e *Error) Is(target error) bool {
	cs, ok := target.(codeSentinel)
	return ok && string(cs) == e.Code
}

// codeSentinel is the sentinel form of one stable error code.
type codeSentinel string

func (c codeSentinel) Error() string { return "spand error code " + strconv.Quote(string(c)) }

// Sentinels for every stable error code, matchable against a decoded
// *Error with errors.Is.
var (
	ErrSyntax              = codeSentinel(CodeSyntax)
	ErrUnbound             = codeSentinel(CodeUnbound)
	ErrDifferenceBudget    = codeSentinel(CodeDifferenceBudget)
	ErrBadQuery            = codeSentinel(CodeBadQuery)
	ErrBadSplice           = codeSentinel(CodeBadSplice)
	ErrBadName             = codeSentinel(CodeBadName)
	ErrDocumentNotFound    = codeSentinel(CodeDocumentNotFound)
	ErrNotFound            = codeSentinel(CodeNotFound)
	ErrTooLarge            = codeSentinel(CodeTooLarge)
	ErrDeadline            = codeSentinel(CodeDeadline)
	ErrCanceled            = codeSentinel(CodeCanceled)
	ErrRegistryUnavailable = codeSentinel(CodeRegistryUnavailable)
	ErrBadArtifact         = codeSentinel(CodeBadArtifact)
	ErrBadRequest          = codeSentinel(CodeBadRequest)
	ErrUnavailable         = codeSentinel(CodeUnavailable)
	ErrGone                = codeSentinel(CodeGone)
	ErrOverloaded          = codeSentinel(CodeOverloaded)
	ErrUpstream            = codeSentinel(CodeUpstream)
)

// ErrorEnvelope is the wire form of every spand error response. The
// server packages (internal/httpapi, internal/cluster) encode it; the
// client decodes it back into an *Error.
type ErrorEnvelope struct {
	Err ErrorDetail `json:"error"`
}

// ErrorDetail carries the stable code and human-readable message
// inside the envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// maxErrorBody caps how much of an error response body the client
// reads while decoding the envelope.
const maxErrorBody = 1 << 20

// decodeError turns a non-2xx response into an *Error, tolerating
// bodies that are not the unified envelope (proxies, panics) by
// keeping a snippet of the raw body as the message.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	e := &Error{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err.Code != "" {
		e.Code = env.Err.Code
		e.Message = env.Err.Message
		return e
	}
	snippet := strings.TrimSpace(string(body))
	if len(snippet) > 200 {
		snippet = snippet[:200]
	}
	if snippet == "" {
		snippet = http.StatusText(resp.StatusCode)
	}
	e.Message = snippet
	return e
}
