package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spanners/client"
	"spanners/internal/httpapi"
	"spanners/internal/registry"
	"spanners/internal/service"
)

// newServer boots a real spand (service + httpapi) over httptest with
// a registry, and returns a client pointed at it.
func newServer(t *testing.T) (*client.Client, *service.Service) {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Registry: reg})
	ts := httptest.NewServer(httpapi.New(svc, httpapi.Options{}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, svc
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New("http://host:8080/prefix/"); err != nil {
		t.Fatalf("path-prefixed base URL rejected: %v", err)
	}
	c, err := client.New("http://host:8080/prefix/")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.BaseURL(); got != "http://host:8080/prefix" {
		t.Fatalf("BaseURL = %q, want trailing slash trimmed", got)
	}
	for _, bad := range []string{"", "host:8080", "/just/a/path", "://nope"} {
		if _, err := client.New(bad); err == nil {
			t.Errorf("New(%q) accepted, want error", bad)
		}
	}
	hc := &http.Client{Timeout: time.Minute}
	if _, err := client.New("http://h", client.WithHTTPClient(hc)); err != nil {
		t.Fatalf("WithHTTPClient: %v", err)
	}
}

func TestExtractBatch(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()
	resp, err := c.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: `.*(Seller: x{[^,\n]*},[^\n]*\n).*`},
		Docs: []string{
			"Seller: Anna, 12 Hill St\n",
			"no sellers here\n",
			"Seller: Bob, 1 Main Rd\n",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d result arrays, want 3", len(resp.Results))
	}
	if len(resp.Results[1]) != 0 {
		t.Fatalf("doc 1 extracted %d mappings, want 0", len(resp.Results[1]))
	}
	for i, want := range map[int]string{0: "Anna", 2: "Bob"} {
		if len(resp.Results[i]) != 1 {
			t.Fatalf("doc %d: %d mappings, want 1", i, len(resp.Results[i]))
		}
		sp, ok := resp.Results[i][0]["x"]
		if !ok || sp.Content != want {
			t.Fatalf("doc %d: x = %+v, want content %q", i, sp, want)
		}
		if sp.End <= sp.Start {
			t.Fatalf("doc %d: degenerate span %+v", i, sp)
		}
	}
	if len(resp.Stats) == 0 {
		t.Fatal("stats missing from batch response")
	}
}

// ExtractRaw must return the server's bytes verbatim: re-encoding the
// typed results must parse to the same mappings, and the raw arrays
// must themselves be valid JSON carrying the same content.
func TestExtractRaw(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()
	req := client.ExtractRequest{
		Query: client.Query{Expr: `x{a+}`},
		Docs:  []string{"aaa", "a"},
	}
	typed, err := c.Extract(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.ExtractRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Results) != len(typed.Results) {
		t.Fatalf("raw %d arrays vs typed %d", len(raw.Results), len(typed.Results))
	}
	for i, rm := range raw.Results {
		var again []client.Result
		if err := json.Unmarshal(rm, &again); err != nil {
			t.Fatalf("raw results[%d] is not a JSON array: %v", i, err)
		}
		if fmt.Sprint(again) != fmt.Sprint(typed.Results[i]) {
			t.Fatalf("raw results[%d] decodes to %v, typed says %v", i, again, typed.Results[i])
		}
	}
}

func TestExtractStream(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()
	st, err := c.ExtractStream(ctx, client.StreamRequest{
		Query: client.Query{Expr: `a*x{a*}a*`},
		Doc:   "aaaa",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var n int
	for {
		res, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res["x"]; !ok {
			t.Fatalf("mapping %d missing x: %v", n, res)
		}
		n++
	}
	if n == 0 {
		t.Fatal("stream produced no mappings")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// A rejected query never returns a Stream — the error is typed.
	_, err = c.ExtractStream(ctx, client.StreamRequest{
		Query: client.Query{Expr: "x{"}, Doc: "a",
	})
	if !errors.Is(err, client.ErrSyntax) {
		t.Fatalf("bad stream query: %v, want ErrSyntax", err)
	}
}

// NextRaw hands back each NDJSON line without its newline, and a
// connection dying mid-record surfaces as truncation, never as a
// mapping.
func TestStreamRawAndTruncation(t *testing.T) {
	c, _ := newServer(t)
	st, err := c.ExtractStream(context.Background(), client.StreamRequest{
		Query: client.Query{Expr: `x{ab}`}, Doc: "ab",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	line, err := st.NextRaw()
	if err != nil {
		t.Fatal(err)
	}
	if len(line) == 0 || line[len(line)-1] == '\n' {
		t.Fatalf("raw line %q: empty or newline kept", line)
	}
	var res client.Result
	if err := json.Unmarshal(line, &res); err != nil {
		t.Fatalf("raw line is not one JSON mapping: %v", err)
	}
	if _, err := st.NextRaw(); err != io.EOF {
		t.Fatalf("after last line: %v, want io.EOF", err)
	}

	// Fake server: one whole line, then a record cut mid-bytes.
	cut := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "{\"x\":{\"start\":1,\"end\":2,\"content\":\"a\"}}\n{\"x\":{\"sta")
	}))
	defer cut.Close()
	cc, err := client.New(cut.URL)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cc.ExtractStream(context.Background(), client.StreamRequest{
		Query: client.Query{Expr: "x{a}"}, Doc: "a",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Next(); err != nil {
		t.Fatalf("first (complete) line: %v", err)
	}
	if _, err := st2.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("cut record: %v, want io.ErrUnexpectedEOF", err)
	}
	// The error sticks.
	if _, err := st2.NextRaw(); err != io.ErrUnexpectedEOF {
		t.Fatalf("after truncation: %v, want sticky io.ErrUnexpectedEOF", err)
	}
}

func TestDocumentsLifecycle(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()

	info, created, err := c.PutDocument(ctx, "log", "Seller: Anna, 12 Hill St\n")
	if err != nil {
		t.Fatal(err)
	}
	if !created || info.Version != 1 {
		t.Fatalf("first put: created=%v version=%d, want true/1", created, info.Version)
	}
	_, created, err = c.PutDocument(ctx, "log", "Seller: Anna, 12 Hill St\n")
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("replacing put reported created=true")
	}

	doc, err := c.GetDocument(ctx, "log")
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != "log" || !strings.Contains(doc.Text, "Anna") {
		t.Fatalf("got %+v", doc)
	}

	info, err = c.PatchDocument(ctx, "log", client.Splice{
		Offset: len(doc.Text), Insert: "Seller: Bob, 1 Main Rd\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Version <= doc.Version {
		t.Fatalf("splice did not bump version: %+v after %+v", info, doc)
	}

	// Extraction by reference sees the spliced text.
	resp, err := c.Extract(ctx, client.ExtractRequest{
		Query:  client.Query{Expr: `.*(Seller: x{[^,\n]*},[^\n]*\n).*`},
		DocIDs: []string{"log"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || len(resp.Results[0]) != 2 {
		t.Fatalf("by-reference extraction: %v, want 2 mappings", resp.Results)
	}

	// A bad splice is the typed bad_splice error.
	_, err = c.PatchDocument(ctx, "log", client.Splice{Offset: 1 << 20, Insert: "x"})
	if !errors.Is(err, client.ErrBadSplice) {
		t.Fatalf("past-EOF splice: %v, want ErrBadSplice", err)
	}

	if err := c.DeleteDocument(ctx, "log"); err != nil {
		t.Fatal(err)
	}
	_, err = c.GetDocument(ctx, "log")
	if !errors.Is(err, client.ErrDocumentNotFound) {
		t.Fatalf("get after delete: %v, want ErrDocumentNotFound", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()

	man, created, err := c.RegisterSpanner(ctx, "seller", `.*(Seller: x{[^,\n]*},[^\n]*\n).*`)
	if err != nil {
		t.Fatal(err)
	}
	if !created || man.Version == "" || !man.Sequential {
		t.Fatalf("register: created=%v manifest=%+v", created, man)
	}
	if want := "seller@" + man.Version; man.Ref() != want {
		t.Fatalf("Ref() = %q, want %q", man.Ref(), want)
	}
	// Content addressing: identical source re-registers idempotently.
	again, created, err := c.RegisterSpanner(ctx, "seller", `.*(Seller: x{[^,\n]*},[^\n]*\n).*`)
	if err != nil {
		t.Fatal(err)
	}
	if created || again.Version != man.Version {
		t.Fatalf("re-register: created=%v version=%s, want false/%s", created, again.Version, man.Version)
	}

	if _, _, err := c.RegisterSpanner(ctx, "tax", `.*\$y{[0-9,]+}.*`); err != nil {
		t.Fatal(err)
	}
	alg, created, err := c.RegisterAlgebra(ctx, "pair", "join(seller, tax)")
	if err != nil {
		t.Fatal(err)
	}
	if !created || alg.Kind != "algebra" {
		t.Fatalf("register-algebra: created=%v manifest=%+v", created, alg)
	}

	// Manifest by latest and by pinned version.
	got, err := c.GetManifest(ctx, "seller", "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != man.Version || got.Source != man.Source {
		t.Fatalf("latest manifest %+v, want %+v", got, man)
	}
	if _, err := c.GetManifest(ctx, "seller", man.Version); err != nil {
		t.Fatalf("pinned manifest: %v", err)
	}

	mans, err := c.ListManifests(ctx)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range mans {
		names[m.Name] = true
	}
	if !names["seller"] || !names["tax"] || !names["pair"] {
		t.Fatalf("list missing names: %v", mans)
	}

	// The registered composition serves through Extract.
	resp, err := c.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Spanner: alg.Ref()},
		Docs:  []string{"Seller: Mark, ID7, $35,000\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results[0]) == 0 {
		t.Fatal("registered algebra extracted nothing")
	}

	if err := c.DeleteSpanner(ctx, "pair", ""); err != nil {
		t.Fatal(err)
	}
	_, err = c.GetManifest(ctx, "pair", "")
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("manifest after delete: %v, want ErrNotFound", err)
	}
}

func TestHealthz(t *testing.T) {
	c, _ := newServer(t)
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q, want ok", h.Status)
	}
	var full map[string]json.RawMessage
	if err := json.Unmarshal(h.Raw, &full); err != nil {
		t.Fatalf("Raw is not the full body: %v", err)
	}
	if _, ok := full["engine"]; !ok {
		t.Fatalf("Raw lost the subsystem detail: %s", h.Raw)
	}
}

func TestTypedErrors(t *testing.T) {
	c, _ := newServer(t)
	ctx := context.Background()

	_, err := c.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: "x{"}, Docs: []string{"a"},
	})
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("syntax error not a *client.Error: %v", err)
	}
	if ce.Status != http.StatusBadRequest || ce.Code != client.CodeSyntax {
		t.Fatalf("got %+v, want 400 syntax", ce)
	}
	if !errors.Is(err, client.ErrSyntax) || errors.Is(err, client.ErrNotFound) {
		t.Fatalf("sentinel matching broken for %+v", ce)
	}
	if msg := ce.Error(); !strings.Contains(msg, "syntax") || !strings.Contains(msg, "400") {
		t.Fatalf("Error() = %q", msg)
	}

	_, err = c.GetManifest(ctx, "ghost", "")
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown name: %v, want ErrNotFound", err)
	}
	_, err = c.Extract(ctx, client.ExtractRequest{
		Query: client.Query{Expr: "a", Rule: "b"}, Docs: []string{"a"},
	})
	if !errors.Is(err, client.ErrBadQuery) {
		t.Fatalf("two query kinds: %v, want ErrBadQuery", err)
	}
}

// Responses that are not the unified envelope (intermediary proxies,
// panics) still decode into an *Error: status kept, code empty, body
// snippet as the message, Retry-After parsed.
func TestNonEnvelopeError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "upstream exploded")
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Extract(context.Background(), client.ExtractRequest{
		Query: client.Query{Expr: "a"}, Docs: []string{"a"},
	})
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("not a *client.Error: %v", err)
	}
	if ce.Status != 503 || ce.Code != "" || ce.Message != "upstream exploded" {
		t.Fatalf("got %+v", ce)
	}
	if ce.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", ce.RetryAfter)
	}
	if !strings.Contains(ce.Error(), "http_503") {
		t.Fatalf("codeless Error() = %q", ce.Error())
	}
	if errors.Is(err, client.ErrUnavailable) {
		t.Fatal("codeless error matched a sentinel")
	}
}
