// Package client is the official Go client for the spand /v1 API —
// the one typed wrapper every in-repo consumer (spangate's fan-out,
// spanreg's remote mode, the examples, the tests) drives the HTTP
// surface through instead of ad-hoc net/http calls.
//
// It covers the full surface: Extract (batch), ExtractStream (an
// NDJSON iterator), the documents CRUD+Patch API, the registry
// (register / manifest / list / delete) and Healthz. Every non-2xx
// response is decoded from the unified error envelope into a typed
// *Error that matches the package's per-code sentinels:
//
//	res, err := c.Extract(ctx, client.ExtractRequest{
//	    Query: client.Query{Expr: `x{[a-z]+}`},
//	    Docs:  []string{"one doc", "another"},
//	})
//	if errors.Is(err, client.ErrSyntax) { ... }
//
// The client adds no retry or routing policy of its own — it is the
// verbatim wire contract. Cluster-level policy (health checking,
// retries, scatter/gather) lives in internal/cluster on top of it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Query selects the spanner to run: exactly one of Expr (an RGX
// compiled on the fly), Rule (a spanner-rule program), Spanner (a
// pinned registry reference "name" or "name@version") or Algebra (a
// composition over registered names). Limit, when positive, caps the
// number of mappings per document.
type Query struct {
	Expr    string `json:"expr,omitempty"`
	Rule    string `json:"rule,omitempty"`
	Spanner string `json:"spanner,omitempty"`
	Algebra string `json:"algebra,omitempty"`
	Limit   int    `json:"limit,omitempty"`
}

// Span is one extracted span: 1-based rune positions in the paper's
// convention plus the span's content.
type Span struct {
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Content string `json:"content"`
}

// Result is one output mapping: assigned variables only — a variable
// absent from the map was not extracted (the incomplete-information
// semantics), not an error.
type Result map[string]Span

// ExtractRequest is the body of POST /v1/extract: one query over a
// batch of documents, inline (Docs) and/or by store reference
// (DocIDs). Results follow input order: docs first, then doc_ids.
type ExtractRequest struct {
	Query
	Docs   []string `json:"docs,omitempty"`
	DocIDs []string `json:"doc_ids,omitempty"`
}

// ExtractResponse pairs per-document results (input order) with the
// server's stats snapshot, kept raw so the client does not chase the
// server's counter schema.
type ExtractResponse struct {
	Results [][]Result      `json:"results"`
	Stats   json.RawMessage `json:"stats"`
}

// RawExtractResponse is ExtractResponse with each document's result
// array kept as raw bytes. Proxies (spangate) splice these verbatim
// into their merged response, so the fan-out is byte-identical to a
// single server answering the whole batch.
type RawExtractResponse struct {
	Results []json.RawMessage `json:"results"`
	Stats   json.RawMessage   `json:"stats"`
}

// ExtractRaw runs one query over a batch of documents like Extract,
// but keeps each document's result array as the server's raw bytes.
func (c *Client) ExtractRaw(ctx context.Context, req ExtractRequest) (*RawExtractResponse, error) {
	var out RawExtractResponse
	if err := c.do(ctx, http.MethodPost, "/v1/extract", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamRequest is the body of POST /v1/extract/stream: one query and
// one document, inline (Doc) or by store reference (DocID).
type StreamRequest struct {
	Query
	Doc   string `json:"doc,omitempty"`
	DocID string `json:"doc_id,omitempty"`
}

// Document is a stored document, text included (GET /v1/documents).
type Document struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	Text    string `json:"text"`
}

// DocumentInfo describes a stored document without echoing its text —
// what the mutation endpoints return.
type DocumentInfo struct {
	ID      string `json:"id"`
	Version int64  `json:"version"`
	Bytes   int    `json:"bytes"`
}

// Splice is one document patch: delete DeleteLen bytes at Offset,
// then insert Insert there. Offsets are bytes on UTF-8 rune
// boundaries; a pure append is {Offset: <len>, Insert: "..."}.
type Splice struct {
	Offset    int    `json:"offset"`
	DeleteLen int    `json:"delete_len"`
	Insert    string `json:"insert"`
}

// Manifest describes one stored registry artifact: the
// content-addressed version, the source it was compiled from and the
// compiled program's shape. Program stats stay raw for the same
// reason ExtractResponse.Stats does.
type Manifest struct {
	Name       string          `json:"name"`
	Version    string          `json:"version"`
	Kind       string          `json:"kind,omitempty"`
	Source     string          `json:"source"`
	Sequential bool            `json:"sequential"`
	Vars       []string        `json:"vars"`
	Program    json.RawMessage `json:"program"`
	SizeBytes  int             `json:"size_bytes"`
	CreatedAt  time.Time       `json:"created_at"`
}

// Ref renders the manifest's pinnable "name@version" reference.
func (m Manifest) Ref() string { return m.Name + "@" + m.Version }

// Healthz is the /v1/healthz body: the liveness status plus the
// server's subsystem summaries, kept raw.
type Healthz struct {
	Status string `json:"status"`
	// Raw is the full response body, for callers that want the
	// engine/DFA/registry/algebra/documents detail.
	Raw json.RawMessage `json:"-"`
}

// Client talks to one spand (or spangate) base URL. It is safe for
// concurrent use; the zero value is not usable — construct with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the spand instance at baseURL (scheme and
// host, e.g. "http://localhost:8080"). A path prefix is kept, so a
// gateway mounting spand under a subpath works too; the /v1 segment
// is appended per request and must not be part of baseURL.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q must be absolute (scheme and host)", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// BaseURL returns the normalized base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues one JSON request and decodes the response into out (when
// non-nil). Non-2xx responses are decoded into a typed *Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// send issues the request without consuming the response body.
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encode %s %s request: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("client: build %s %s request: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.hc.Do(req)
}

// Extract runs one query over a batch of documents, returning results
// in input order (docs first, then doc_ids).
func (c *Client) Extract(ctx context.Context, req ExtractRequest) (*ExtractResponse, error) {
	var out ExtractResponse
	if err := c.do(ctx, http.MethodPost, "/v1/extract", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PutDocument creates or fully replaces a stored document; created
// reports whether this call created it (version 1).
func (c *Client) PutDocument(ctx context.Context, id, text string) (DocumentInfo, bool, error) {
	resp, err := c.send(ctx, http.MethodPut, "/v1/documents/"+url.PathEscape(id),
		struct {
			Text string `json:"text"`
		}{text})
	if err != nil {
		return DocumentInfo{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return DocumentInfo{}, false, decodeError(resp)
	}
	var info DocumentInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return DocumentInfo{}, false, fmt.Errorf("client: decode put document response: %w", err)
	}
	return info, resp.StatusCode == http.StatusCreated, nil
}

// GetDocument returns a stored document, text included.
func (c *Client) GetDocument(ctx context.Context, id string) (Document, error) {
	var doc Document
	err := c.do(ctx, http.MethodGet, "/v1/documents/"+url.PathEscape(id), nil, &doc)
	return doc, err
}

// PatchDocument applies one splice and returns the new version.
func (c *Client) PatchDocument(ctx context.Context, id string, sp Splice) (DocumentInfo, error) {
	var info DocumentInfo
	err := c.do(ctx, http.MethodPatch, "/v1/documents/"+url.PathEscape(id), sp, &info)
	return info, err
}

// DeleteDocument removes a stored document and its sessions.
func (c *Client) DeleteDocument(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/documents/"+url.PathEscape(id), nil, nil)
}

// registerResponse is the wire shape of PUT /v1/registry/{name}.
type registerResponse struct {
	Manifest
	Created bool `json:"created"`
}

// RegisterSpanner compiles and stores an RGX under name, returning
// the manifest and whether this call created the version (false =
// idempotent re-registration of identical content).
func (c *Client) RegisterSpanner(ctx context.Context, name, expr string) (Manifest, bool, error) {
	return c.register(ctx, name, struct {
		Expr string `json:"expr"`
	}{expr})
}

// RegisterAlgebra composes an algebra expression over already
// registered names and stores the composition with its leaves pinned.
func (c *Client) RegisterAlgebra(ctx context.Context, name, expr string) (Manifest, bool, error) {
	return c.register(ctx, name, struct {
		Algebra string `json:"algebra"`
	}{expr})
}

func (c *Client) register(ctx context.Context, name string, body any) (Manifest, bool, error) {
	var out registerResponse
	if err := c.do(ctx, http.MethodPut, "/v1/registry/"+url.PathEscape(name), body, &out); err != nil {
		return Manifest{}, false, err
	}
	return out.Manifest, out.Created, nil
}

// GetManifest returns the manifest for name at version ("" = latest).
func (c *Client) GetManifest(ctx context.Context, name, version string) (Manifest, error) {
	var man Manifest
	err := c.do(ctx, http.MethodGet, "/v1/registry/"+url.PathEscape(name)+versionQuery(version), nil, &man)
	return man, err
}

// ListManifests returns every registered name at its latest version.
func (c *Client) ListManifests(ctx context.Context) ([]Manifest, error) {
	var mans []Manifest
	err := c.do(ctx, http.MethodGet, "/v1/registry", nil, &mans)
	return mans, err
}

// DeleteSpanner removes name at version ("" = every version).
func (c *Client) DeleteSpanner(ctx context.Context, name, version string) error {
	return c.do(ctx, http.MethodDelete, "/v1/registry/"+url.PathEscape(name)+versionQuery(version), nil, nil)
}

func versionQuery(version string) string {
	if version == "" {
		return ""
	}
	return "?version=" + url.QueryEscape(version)
}

// Healthz probes /v1/healthz, returning the status plus the raw body.
func (c *Client) Healthz(ctx context.Context) (Healthz, error) {
	resp, err := c.send(ctx, http.MethodGet, "/v1/healthz", nil)
	if err != nil {
		return Healthz{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return Healthz{}, decodeError(resp)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	if err != nil {
		return Healthz{}, fmt.Errorf("client: read healthz body: %w", err)
	}
	var h Healthz
	if err := json.Unmarshal(raw, &h); err != nil {
		return Healthz{}, fmt.Errorf("client: decode healthz body: %w", err)
	}
	h.Raw = raw
	return h, nil
}
