package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ExtractStream starts a streaming extraction (POST /v1/extract/stream)
// and returns an iterator over its NDJSON mappings. The server flushes
// after every mapping, so Next observes results with the enumerator's
// polynomial delay instead of waiting for the full output set.
//
// A non-200 response (bad query, missing document) is decoded into a
// typed *Error before any Stream is returned, so once a Stream exists
// the query was accepted. Close the stream to release the connection;
// canceling ctx aborts it mid-flight.
func (c *Client) ExtractStream(ctx context.Context, req StreamRequest) (*Stream, error) {
	resp, err := c.send(ctx, http.MethodPost, "/v1/extract/stream", req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return &Stream{body: resp.Body, br: bufio.NewReader(resp.Body)}, nil
}

// Stream iterates the NDJSON mappings of one streaming extraction.
// Not safe for concurrent use.
type Stream struct {
	body io.Closer
	br   *bufio.Reader
	err  error
}

// Next returns the next mapping, or io.EOF after the last one. Any
// other error means the stream was cut short — the server aborts the
// connection rather than ending the body cleanly when enumeration
// failed mid-flight, so a truncated result set is never mistaken for
// a complete one.
func (s *Stream) Next() (Result, error) {
	line, err := s.NextRaw()
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(line, &res); err != nil {
		s.err = fmt.Errorf("client: decode stream line: %w", err)
		return nil, s.err
	}
	return res, nil
}

// NextRaw returns the next raw NDJSON line without its trailing
// newline, or io.EOF after the last one. Proxies (spangate) forward
// these bytes verbatim so the merged stream is byte-identical to the
// shard's.
func (s *Stream) NextRaw() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	line, err := s.br.ReadBytes('\n')
	if len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			// A final line without its newline: the connection died
			// mid-record. Surface it as a truncation, not a mapping.
			err = io.ErrUnexpectedEOF
		}
		s.err = err
		return nil, err
	}
	return line, nil
}

// Close releases the underlying connection. It is safe to call twice
// and after Next returned an error.
func (s *Stream) Close() error {
	if s.err == nil {
		s.err = io.EOF
	}
	return s.body.Close()
}
